package nestedtx_test

// The network counterpart of TestSoak (soak_test.go): a bounded
// endurance run of the full remote stack — server, wire protocol,
// reconnecting client pool — under a seeded chaos schedule from the
// faultnet proxy (latency, jitter, connection cuts, a partition/heal
// cycle). Ends with the same safety net as the local soak: lock-table
// invariants and full machine-checked verification of the recorded
// schedule (Theorem 34 under network faults).

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"nestedtx"
	"nestedtx/client"
	"nestedtx/internal/faultnet"
	"nestedtx/internal/server"
)

func TestNetworkChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("network chaos soak skipped in -short mode")
	}
	mgr := nestedtx.NewManager(nestedtx.WithRecording())
	mgr.MustRegister("acct", nestedtx.Account{Balance: 1000})
	mgr.MustRegister("ctr", nestedtx.Counter{})
	mgr.MustRegister("reg", nestedtx.NewRegister(int64(0)))

	srv := server.New(mgr, server.Config{
		IdleTimeout:    500 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	px, err := faultnet.New(ln.Addr().String(), faultnet.Faults{
		Latency: 100 * time.Microsecond,
		Jitter:  500 * time.Microsecond,
	}, 0xC0FFEE)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := client.NewPool(px.Addr(), 3, client.WithTimeout(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}

	// Seeded chaos: cuts at random intervals plus one partition window.
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		rng := rand.New(rand.NewSource(0xC0FFEE))
		for i := 0; i < 15; i++ {
			time.Sleep(time.Duration(10+rng.Intn(30)) * time.Millisecond)
			if i == 8 {
				px.Partition()
				time.Sleep(100 * time.Millisecond)
				px.Heal()
				continue
			}
			px.CutAll()
		}
	}()

	const workers, perWorker = 3, 10
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for j := 0; j < perWorker; j++ {
				kind := rng.Intn(3)
				err := pool.RunRetry(200, func(tx *client.Tx) error {
					switch kind {
					case 0: // nested deposit
						return tx.Sub(func(sub *client.Tx) error {
							_, err := sub.Write("acct", nestedtx.AcctDeposit{Amount: 1})
							return err
						})
					case 1:
						_, err := tx.Write("ctr", nestedtx.CtrAdd{Delta: 1})
						return err
					default:
						if _, err := tx.Read("reg", nestedtx.RegRead{}); err != nil {
							return err
						}
						_, err := tx.Write("reg", nestedtx.RegWrite{V: int64(j)})
						return err
					}
				})
				if err != nil && !errors.Is(err, nestedtx.ErrDeadlock) {
					errc <- fmt.Errorf("worker %d item %d: %w", w, j, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	<-chaosDone
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	pool.Close()
	px.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := mgr.CheckInvariants(); err != nil {
		t.Fatalf("lock-table invariants after chaos soak: %v", err)
	}
	if err := mgr.Verify(); err != nil {
		t.Fatalf("chaos soak failed verification: %v", err)
	}
	c := srv.Counters()
	if c.Commits == 0 {
		t.Fatal("chaos soak committed nothing")
	}
	t.Logf("chaos soak: %d sessions, %d requests, %d commits, %d aborts, %d reaped; schedule verified",
		c.TotalSessions, c.Requests, c.Commits, c.Aborts, c.ReapedSessions)
}
