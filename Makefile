# nestedtx build/test entry points. `make test` is the tier-1 flow:
# vet runs before the tests, as in CI.

GO ?= go

.PHONY: all build vet test race bench bench-short fuzz clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1: build + vet + full test suite.
test: build vet
	$(GO) test ./...

# The concurrency-heavy suites under the race detector.
race: vet
	$(GO) test -race ./...

# The experiment/benchmark suite (short run of every benchmark).
bench:
	$(GO) test -bench . -benchtime 1x ./...
	$(GO) test -run XXX -bench ServerThroughput -benchtime 200x ./internal/server

# Smoke-run every benchmark once (CI: catches bit-rot in bench code
# without paying for statistically meaningful timings).
bench-short:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

fuzz:
	$(GO) test -fuzz FuzzTheorem34 -fuzztime 30s ./internal/checker

clean:
	$(GO) clean ./...
