# nestedtx build/test entry points. `make test` is the tier-1 flow:
# vet runs before the tests, as in CI.

GO ?= go

.PHONY: all build vet test race bench bench-short chaos crash repl sim sim-mine fuzz fuzz-short metrics-smoke clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1: build + vet + full test suite.
test: build vet
	$(GO) test ./...

# The concurrency-heavy suites under the race detector.
race: vet
	$(GO) test -race ./...

# The experiment/benchmark suite (short run of every benchmark).
bench:
	$(GO) test -bench . -benchtime 1x ./...
	$(GO) test -run XXX -bench ServerThroughput -benchtime 200x ./internal/server
	$(GO) test -run XXX -bench ShardScaling -benchtime 1000x ./internal/lockmgr
	$(GO) test -run XXX -bench E17SnapshotScans -benchtime 5x .

# Smoke-run every benchmark once (CI: catches bit-rot in bench code
# without paying for statistically meaningful timings).
bench-short:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

# Fault-injection suite under the race detector: the faultnet proxy,
# client poisoning/pool tests, the server's connection-failure e2e
# (cuts, stalls, partitions, the E11 fault-rate sweep) and the network
# chaos soak.
chaos: vet
	$(GO) test -race ./internal/faultnet ./client
	$(GO) test -race -run 'Fault|Poison|Stalled|Timeout|Pool|E11' ./internal/server
	$(GO) test -race -run NetworkChaosSoak .

# Crash-recovery property suite under the race detector: the WAL unit
# tests (including the stalled-fsync pipelining test and the
# poisoned-log drain regressions), the 100-seed kill-at-random-byte
# recovery test (Theorem 34 across a crash) and the server
# drain-durability e2e.
crash: vet
	$(GO) test -race ./internal/wal
	$(GO) test -race -run CrashRecoverySeeds .
	$(GO) test -race -run 'DrainDurability|LargeState|OversizeState' ./internal/server

# Replication suite under the race detector: the repl unit tests
# (shipper/follower/snapshot bootstrap) and the server-level e2e —
# replica reads + read-only rejection, promotion, the partition-chaos
# failover acceptance test, mid-catch-up follower restart, and replica
# pool routing/failover.
repl: vet
	$(GO) test -race ./internal/repl
	$(GO) test -race -run 'TestReplica|TestPromote|TestControlledFailover|TestFollowerRestart' ./internal/server

# Deterministic whole-system simulation: the dst unit tests (generator
# properties + byte-identical-log determinism) under the race detector,
# the checked-in seed corpus through txdst, and a cross-process
# determinism check (two txdst invocations of the same seed must emit
# identical event logs).
sim: vet
	$(GO) test -race ./internal/dst/...
	$(GO) run -race ./cmd/txdst -corpus internal/dst/corpus.txt
	$(GO) run ./cmd/txdst -scenario crash-bitrot-checkpoint -seed 1 -log > /tmp/dst-log-a.txt
	$(GO) run ./cmd/txdst -scenario crash-bitrot-checkpoint -seed 1 -log > /tmp/dst-log-b.txt
	cmp /tmp/dst-log-a.txt /tmp/dst-log-b.txt

# Regenerate the seed corpus: two passing seeds per scenario, at the
# scale the -race corpus replay can afford. Full-size cells run via
# `txdst -scenario <name>` directly (see EXPERIMENTS.md E18).
sim-mine:
	$(GO) run ./cmd/txdst -mine 2 -scale 0.25 > internal/dst/corpus.txt

fuzz:
	$(GO) test -fuzz FuzzTheorem34 -fuzztime 30s ./internal/checker

# Short fuzz smoke for CI: the wire framing/decode surface and the WAL
# segment scanner, a few seconds each.
fuzz-short:
	$(GO) test -run XXX -fuzz FuzzReadFrame -fuzztime 10s ./internal/wire
	$(GO) test -run XXX -fuzz FuzzSegmentScan -fuzztime 10s ./internal/wal

# End-to-end observability probe against the real binaries: starts a
# traced txserver, drives load with txmetrics -exercise, and asserts the
# METRICS histograms reconcile exactly with the STATS counters.
metrics-smoke:
	./scripts/metrics_smoke.sh

clean:
	$(GO) clean ./...
