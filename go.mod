module nestedtx

go 1.24
