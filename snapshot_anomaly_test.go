package nestedtx

import (
	"errors"
	"testing"

	"nestedtx/internal/adt"
	"nestedtx/internal/checker"
	"nestedtx/internal/event"
	"nestedtx/internal/snap"
)

// snapHistory runs a small mixed workload under recording and returns
// the pieces CheckSnapshots consumes, for the corruption tests below.
func snapHistory(t *testing.T) (event.Schedule, *event.SystemType, []snap.PubEntry, []checker.SnapTx) {
	t.Helper()
	m := NewManager(WithRecording())
	m.MustRegister("x", Counter{})
	m.MustRegister("y", Counter{})
	for i := 0; i < 3; i++ {
		if err := m.Run(func(tx *Tx) error {
			if _, err := tx.Write("x", CtrAdd{Delta: 1}); err != nil {
				return err
			}
			_, err := tx.Write("y", CtrAdd{Delta: 2})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.RunReadOnly(func(s *Snapshot) error {
		if _, err := s.Read("x", CtrGet{}); err != nil {
			return err
		}
		_, err := s.Read("y", CtrGet{})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	m.snapMu.Lock()
	txs := append([]checker.SnapTx(nil), m.snapTxs...)
	m.snapMu.Unlock()
	return m.Schedule(), m.SystemType(), m.snap.Log(), txs
}

// wantAnomaly asserts that CheckSnapshots rejects the history with the
// given anomaly kind.
func wantAnomaly(t *testing.T, kind string, sched event.Schedule, st *event.SystemType, pubs []snap.PubEntry, txs []checker.SnapTx) {
	t.Helper()
	err := checker.CheckSnapshots(sched, st, pubs, txs)
	if err == nil {
		t.Fatalf("checker accepted a history with a planted %s anomaly", kind)
	}
	var a *checker.SnapshotAnomaly
	if !errors.As(err, &a) {
		t.Fatalf("got untyped error %v, want *SnapshotAnomaly", err)
	}
	if a.Kind != kind {
		t.Fatalf("classified as %q (%v), want %q", a.Kind, a, kind)
	}
}

func TestCheckSnapshotsAcceptsCleanHistory(t *testing.T) {
	sched, st, pubs, txs := snapHistory(t)
	if err := checker.CheckSnapshots(sched, st, pubs, txs); err != nil {
		t.Fatalf("clean history rejected: %v", err)
	}
}

func TestCheckSnapshotsClassifiesUnpublishedCommit(t *testing.T) {
	sched, st, pubs, txs := snapHistory(t)
	// Drop the last publication: its committed writes vanish from the
	// store without anything downstream noticing — unless checked.
	wantAnomaly(t, checker.AnomalyUnpublishedCommit, sched, st, pubs[:len(pubs)-1], txs)
}

func TestCheckSnapshotsClassifiesUncommittedPublication(t *testing.T) {
	sched, st, pubs, txs := snapHistory(t)
	forged := append(append([]snap.PubEntry(nil), pubs...), snap.PubEntry{
		Seq: pubs[len(pubs)-1].Seq + 1,
		Top: "T0.99", // never existed, never committed
		Updates: map[string]adt.State{
			"x": Counter{N: 77},
		},
	})
	wantAnomaly(t, checker.AnomalyUncommittedPublication, sched, st, forged, txs)
}

func TestCheckSnapshotsClassifiesPublicationOrder(t *testing.T) {
	sched, st, pubs, txs := snapHistory(t)
	if len(pubs) < 2 {
		t.Fatal("history too small")
	}
	// Swap the sequence numbers of the first two publications: the
	// store's order now contradicts the lock manager's conflict order.
	swapped := append([]snap.PubEntry(nil), pubs...)
	swapped[0].Seq, swapped[1].Seq = swapped[1].Seq, swapped[0].Seq
	wantAnomaly(t, checker.AnomalyPublicationOrder, sched, st, swapped, txs)
}

func TestCheckSnapshotsClassifiesVersionDivergence(t *testing.T) {
	sched, st, pubs, txs := snapHistory(t)
	corrupt := append([]snap.PubEntry(nil), pubs...)
	up := make(map[string]adt.State, len(corrupt[1].Updates))
	for x, s := range corrupt[1].Updates {
		up[x] = s
	}
	up["x"] = Counter{N: 1234} // torn version
	corrupt[1].Updates = up
	wantAnomaly(t, checker.AnomalyVersionDivergence, sched, st, corrupt, txs)
}

func TestCheckSnapshotsClassifiesSpuriousPublication(t *testing.T) {
	sched, st, pubs, txs := snapHistory(t)
	// A committed transaction is credited with a write it never made:
	// append a publication of x by the (real, committed) first top.
	forged := append(append([]snap.PubEntry(nil), pubs...), snap.PubEntry{
		Seq:     pubs[len(pubs)-1].Seq + 1,
		Top:     pubs[0].Top,
		Updates: map[string]adt.State{"x": Counter{N: 9}},
	})
	wantAnomaly(t, checker.AnomalySpuriousPublication, sched, st, forged, txs)
}

func TestCheckSnapshotsClassifiesInconsistentRead(t *testing.T) {
	sched, st, pubs, txs := snapHistory(t)
	if len(txs) != 1 || len(txs[0].Reads) == 0 {
		t.Fatal("expected one recorded snapshot transaction with reads")
	}
	// The reader claims a value the committed prefix at its pin cannot
	// produce (a dirty or future read).
	bad := checker.SnapTx{ID: txs[0].ID, Seq: txs[0].Seq}
	bad.Reads = append([]checker.SnapRead(nil), txs[0].Reads...)
	bad.Reads[0] = checker.SnapRead{Object: bad.Reads[0].Object, Op: bad.Reads[0].Op, Value: int64(424242)}
	wantAnomaly(t, checker.AnomalyInconsistentRead, sched, st, pubs, []checker.SnapTx{bad})
}

func TestCheckSnapshotsClassifiesNonReadOnlyOp(t *testing.T) {
	sched, st, pubs, txs := snapHistory(t)
	bad := checker.SnapTx{ID: "S-bad", Seq: txs[0].Seq, Reads: []checker.SnapRead{
		{Object: "x", Op: CtrAdd{Delta: 1}, Value: int64(1)},
	}}
	wantAnomaly(t, checker.AnomalyNonReadOnlyOp, sched, st, pubs, []checker.SnapTx{bad})
}

// lyingReadOp claims to be read-only but mutates the state it is applied
// to — the equieffectiveness contract violation AnomalyMutatingRead is
// defined to catch.
type lyingReadOp struct{}

func (lyingReadOp) Apply(s adt.State) (adt.State, adt.Value) {
	return Counter{N: s.(Counter).N + 1}, s.(Counter).N
}
func (lyingReadOp) ReadOnly() bool { return true }
func (lyingReadOp) String() string { return "lying-read" }

func TestCheckSnapshotsClassifiesMutatingRead(t *testing.T) {
	sched, st, pubs, txs := snapHistory(t)
	bad := checker.SnapTx{ID: "S-bad", Seq: txs[0].Seq, Reads: []checker.SnapRead{
		{Object: "x", Op: lyingReadOp{}, Value: int64(3)},
	}}
	wantAnomaly(t, checker.AnomalyMutatingRead, sched, st, pubs, []checker.SnapTx{bad})
}
