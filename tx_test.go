package nestedtx

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestTxIDsAndDepth(t *testing.T) {
	m := NewManager()
	m.MustRegister("r", NewRegister(int64(0)))
	err := m.Run(func(tx *Tx) error {
		if tx.ID() != "T0.0" || tx.Depth() != 1 {
			t.Errorf("top-level ID=%s depth=%d", tx.ID(), tx.Depth())
		}
		return tx.Sub(func(sub *Tx) error {
			if sub.ID() != "T0.0.0" || sub.Depth() != 2 {
				t.Errorf("sub ID=%s depth=%d", sub.ID(), sub.Depth())
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// The second top-level gets the next index.
	_ = m.Run(func(tx *Tx) error {
		if tx.ID() != "T0.1" {
			t.Errorf("second top-level ID=%s", tx.ID())
		}
		return nil
	})
}

func TestUseAfterDone(t *testing.T) {
	m := NewManager()
	m.MustRegister("r", NewRegister(int64(0)))
	var leaked *Tx
	if err := m.Run(func(tx *Tx) error {
		leaked = tx
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := leaked.Do("r", RegRead{}); !errors.Is(err, ErrDone) {
		t.Fatalf("Do after done: %v, want ErrDone", err)
	}
	if err := leaked.Sub(func(*Tx) error { return nil }); !errors.Is(err, ErrDone) {
		t.Fatalf("Sub after done: %v, want ErrDone", err)
	}
	h := leaked.Go(func(*Tx) error { return nil })
	if err := h.Wait(); !errors.Is(err, ErrDone) {
		t.Fatalf("Go after done: %v, want ErrDone", err)
	}
}

func TestUnknownObject(t *testing.T) {
	m := NewManager()
	err := m.Run(func(tx *Tx) error {
		_, err := tx.Do("ghost", RegRead{})
		return err
	})
	if err == nil {
		t.Fatal("access to unregistered object must fail")
	}
}

func TestNestedGoFanout(t *testing.T) {
	m := NewManager(WithRecording())
	m.MustRegister("ctr", Counter{})
	err := m.Run(func(tx *Tx) error {
		var top []*Handle
		for i := 0; i < 3; i++ {
			top = append(top, tx.Go(func(mid *Tx) error {
				var inner []*Handle
				for j := 0; j < 3; j++ {
					inner = append(inner, mid.Go(func(leaf *Tx) error {
						_, err := leaf.Do("ctr", CtrAdd{Delta: 1})
						return err
					}))
				}
				for _, h := range inner {
					if err := h.Wait(); err != nil {
						return err
					}
				}
				return nil
			}))
		}
		for _, h := range top {
			if err := h.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := m.State("ctr")
	if s.(Counter).N != 9 {
		t.Fatalf("counter = %v, want 9", s)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMidLevelAbortRollsBackSubtreeOnly(t *testing.T) {
	m := NewManager(WithRecording())
	m.MustRegister("ctr", Counter{})
	err := m.Run(func(tx *Tx) error {
		// Committed branch.
		if err := tx.Sub(func(a *Tx) error {
			_, err := a.Do("ctr", CtrAdd{Delta: 100})
			return err
		}); err != nil {
			return err
		}
		// Aborted branch with committed grandchildren: the grandchild
		// commits *to its parent*, whose abort undoes everything.
		aborted := tx.Sub(func(b *Tx) error {
			if err := b.Sub(func(c *Tx) error {
				_, err := c.Do("ctr", CtrAdd{Delta: 10})
				return err
			}); err != nil {
				return err
			}
			return errors.New("abort the middle")
		})
		if aborted == nil {
			return errors.New("middle branch should have aborted")
		}
		v, err := tx.Do("ctr", CtrGet{})
		if err != nil {
			return err
		}
		if v != int64(100) {
			return fmt.Errorf("parent sees %v, want 100 (grandchild's +10 rolled back)", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomRuntimeVerifies drives the real runtime with random nested
// shapes and machine-checks every run against Theorem 34 — the bridge
// between the goroutine implementation and the formal model.
func TestRandomRuntimeVerifies(t *testing.T) {
	iters := 12
	if testing.Short() {
		iters = 3
	}
	for it := 0; it < iters; it++ {
		m := NewManager(WithRecording())
		for i := 0; i < 3; i++ {
			m.MustRegister(fmt.Sprintf("o%d", i), Counter{})
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for k := 0; k < 4; k++ {
					_ = m.RunRetry(30, func(tx *Tx) error {
						return randomBody(tx, rng.Int63(), 2)
					})
				}
			}(int64(it*10 + w))
		}
		wg.Wait()
		if err := m.Verify(); err != nil {
			t.Fatalf("iter %d: runtime schedule failed verification: %v", it, err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("iter %d: %v", it, err)
		}
	}
}

func randomBody(tx *Tx, seed int64, depth int) error {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		switch {
		case depth > 0 && rng.Intn(2) == 0:
			childSeed := rng.Int63()
			err := tx.Sub(func(sub *Tx) error {
				if err := randomBody(sub, childSeed, depth-1); err != nil {
					return err
				}
				if rng.Intn(5) == 0 {
					return errors.New("voluntary abort")
				}
				return nil
			})
			if err != nil && !errors.Is(err, ErrDeadlock) && !errors.Is(err, ErrAborted) {
				continue // tolerate the voluntary abort
			}
			if err != nil {
				return err
			}
		case rng.Intn(2) == 0:
			if _, err := tx.Do(fmt.Sprintf("o%d", rng.Intn(3)), CtrGet{}); err != nil {
				return err
			}
		default:
			if _, err := tx.Do(fmt.Sprintf("o%d", rng.Intn(3)), CtrAdd{Delta: 1}); err != nil {
				return err
			}
		}
	}
	return nil
}

func TestExclusiveManagerStillCorrect(t *testing.T) {
	m := NewManager(WithRecording(), WithExclusiveLocking())
	m.MustRegister("ctr", Counter{})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = m.RunRetry(20, func(tx *Tx) error {
				if _, err := tx.Do("ctr", CtrGet{}); err != nil {
					return err
				}
				_, err := tx.Do("ctr", CtrAdd{Delta: 1})
				return err
			})
		}()
	}
	wg.Wait()
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	// With exclusive locking, get-then-add never deadlocks on upgrade
	// (the first access already took the exclusive lock), so all commit.
	s, _ := m.State("ctr")
	if s.(Counter).N != 6 {
		t.Fatalf("counter = %v, want 6", s)
	}
}

func TestVerifyRequiresRecording(t *testing.T) {
	m := NewManager()
	if err := m.Verify(); err == nil {
		t.Fatal("Verify without recording must error")
	}
}

func TestWriteScheduleOutput(t *testing.T) {
	m := NewManager(WithRecording())
	m.MustRegister("r", NewRegister(int64(0)))
	_ = m.Run(func(tx *Tx) error {
		_, err := tx.Do("r", RegWrite{V: int64(1)})
		return err
	})
	var sb syncBuilder
	if err := m.WriteSchedule(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.s == "" {
		t.Fatal("schedule dump empty")
	}
}

type syncBuilder struct{ s string }

func (b *syncBuilder) Write(p []byte) (int, error) {
	b.s += string(p)
	return len(p), nil
}

func TestQueueProducerConsumer(t *testing.T) {
	m := NewManager(WithRecording())
	m.MustRegister("q", NewQueue())
	m.MustRegister("sink", Counter{})
	// Producers enqueue 1..N, consumers drain; all inside transactions.
	var wg sync.WaitGroup
	const items = 12
	for i := 0; i < items; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := m.RunRetry(30, func(tx *Tx) error {
				_, err := tx.Write("q", QEnqueue{V: int64(i)})
				return err
			}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	drained := 0
	for {
		var v Value
		err := m.RunRetry(30, func(tx *Tx) error {
			var err error
			v, err = tx.Write("q", QDequeue{})
			if err != nil {
				return err
			}
			if v == nil {
				return nil
			}
			_, err = tx.Write("sink", CtrAdd{Delta: 1})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if v == nil {
			break
		}
		drained++
	}
	if drained != items {
		t.Fatalf("drained %d, want %d", drained, items)
	}
	s, _ := m.State("sink")
	if s.(Counter).N != items {
		t.Fatalf("sink = %v", s)
	}
	qs, _ := m.State("q")
	if qs.(Queue).Len() != 0 {
		t.Fatalf("queue not empty: %v", qs)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}
