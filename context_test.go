package nestedtx

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRunCtxCancelUnblocksAndRollsBack(t *testing.T) {
	m := NewManager(WithRecording())
	m.MustRegister("x", NewRegister(int64(7)))

	// A holder keeps the write lock while we try a second transaction.
	hold := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = m.Run(func(tx *Tx) error {
			if _, err := tx.Write("x", RegWrite{V: int64(1)}); err != nil {
				return err
			}
			close(hold)
			<-release
			return errors.New("holder aborts") // roll back to 7
		})
	}()
	<-hold

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- m.RunCtx(ctx, func(tx *Tx) error {
			_, err := tx.Write("x", RegWrite{V: int64(2)}) // blocks on the holder
			return err
		})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not unblock the transaction")
	}
	close(release)
	// Let the holder finish, then check rollback.
	time.Sleep(20 * time.Millisecond)
	s, _ := m.State("x")
	if s.(Register).V != int64(7) {
		t.Fatalf("state = %v, want 7 (both transactions rolled back)", s)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRunCtxAlreadyCancelled(t *testing.T) {
	m := NewManager()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := m.RunCtx(ctx, func(tx *Tx) error { called = true; return nil })
	if !errors.Is(err, context.Canceled) || called {
		t.Fatalf("err=%v called=%v", err, called)
	}
}

func TestRunCtxCommitsNormally(t *testing.T) {
	m := NewManager(WithRecording())
	m.MustRegister("x", Counter{})
	if err := m.RunCtx(context.Background(), func(tx *Tx) error {
		_, err := tx.Do("x", CtrAdd{Delta: 5})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	s, _ := m.State("x")
	if s.(Counter).N != 5 {
		t.Fatalf("counter = %v", s)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRunCtxBodyErrorJoined(t *testing.T) {
	m := NewManager()
	m.MustRegister("x", Counter{})
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	err := m.RunCtx(ctx, func(tx *Tx) error {
		cancel()
		time.Sleep(5 * time.Millisecond)
		return boom
	})
	if !errors.Is(err, context.Canceled) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want joined Canceled+boom", err)
	}
}
