package nestedtx

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nestedtx/internal/adt"
	"nestedtx/internal/wal"
)

// TestCrashRecoverySeeds is the Theorem-34-across-a-crash property test:
// for each seed it runs a random concurrent workload on a durable
// manager whose file system is killed at a random byte of the write
// stream (torn final write included), recovers from the surviving bytes,
// and checks that
//
//   - recovery itself succeeds, truncating the torn tail rather than
//     replaying it;
//   - the recovered records are an LSN-contiguous prefix of history:
//     per worker, exactly the first k_w transactions survive, in order,
//     and the recovered counter equals the total number of surviving
//     commits (cross-object consistency);
//   - the reconstructed formal schedule passes the full machine check —
//     well-formedness, M(X) replay with value verification, and the S9
//     serial-correctness checker (Recovery.Verify);
//   - a fresh manager over the recovered state serves it and can keep
//     committing.
//
// Every third seed additionally flips a random byte mid-log (bad CRC),
// every fifth uses error-injection (writes fail loudly instead of
// vanishing), and every fourth takes a mid-run checkpoint so crashes
// land before, during and after checkpoint writes.
func TestCrashRecoverySeeds(t *testing.T) {
	const seeds = 100
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			runCrashSeed(t, int64(seed))
		})
	}
}

const (
	crashWorkers = 4
	crashTxs     = 8
)

func runCrashSeed(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	mem := wal.NewMemFS()
	ffs := wal.NewFaultFS(mem)
	dir := "d"

	window := time.Duration(rng.Intn(3)) * 100 * time.Microsecond
	segBytes := int64(512 + rng.Intn(4096))
	m, _, err := OpenDurable(dir, DurableOptions{FS: ffs, SyncWindow: window, SegmentBytes: segBytes})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}

	crashEarly := seed%7 == 6 // sometimes crash during registration
	crashAt := rng.Int63n(9000) + 120
	if crashEarly {
		crashAt = rng.Int63n(300)
	}
	failClosed := seed%5 == 4
	arm := func() {
		if failClosed {
			ffs.FailAfter(crashAt)
		} else {
			ffs.CrashAfter(crashAt)
		}
	}
	if crashEarly {
		arm()
	}
	// Registration errors are only tolerable when the crash is armed
	// this early.
	check := func(err error) {
		if err != nil && !crashEarly {
			t.Fatalf("register: %v", err)
		}
	}
	check(m.Register("ctr", adt.Counter{}))
	check(m.Register("tbl", adt.NewTable(nil)))
	check(m.Register("reg", adt.NewRegister(int64(0))))
	check(m.Register("acct", adt.Account{Balance: 1000}))
	if !crashEarly {
		arm()
	}

	var wg sync.WaitGroup
	for w := 0; w < crashWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed*31 + int64(w)))
			key := fmt.Sprintf("w%d", w)
			for i := 0; i < crashTxs; i++ {
				i := i
				// Errors are expected once the crash point passes (and
				// under deadlock no matter what); the assertions below
				// only rely on what recovery finds.
				_ = m.RunRetry(4, func(tx *Tx) error {
					if _, err := tx.Write("ctr", adt.CtrAdd{Delta: 1}); err != nil {
						return err
					}
					if _, err := tx.Write("tbl", adt.TblPut{K: key, V: int64(i)}); err != nil {
						return err
					}
					switch wrng.Intn(4) {
					case 0: // nested committed work
						if err := tx.Sub(func(s *Tx) error {
							_, err := s.Write("reg", adt.RegWrite{V: int64(w*100 + i)})
							return err
						}); err != nil && !errors.Is(err, ErrDeadlock) {
							return err
						}
					case 1: // nested aborted work — must leave no trace
						_ = tx.Sub(func(s *Tx) error {
							if _, err := s.Write("acct", adt.AcctDeposit{Amount: 7}); err != nil {
								return err
							}
							return errors.New("deliberate abort")
						})
					case 2: // concurrent subtransactions
						h1 := tx.Go(func(s *Tx) error {
							_, err := s.Read("reg", adt.RegRead{})
							return err
						})
						h2 := tx.Go(func(s *Tx) error {
							_, err := s.Write("acct", adt.AcctDeposit{Amount: 1})
							return err
						})
						if err := h1.Wait(); err != nil {
							return err
						}
						if err := h2.Wait(); err != nil {
							return err
						}
					}
					return nil
				})
				if w == 0 && i == crashTxs/2 && seed%4 == 3 {
					_ = m.Checkpoint()
				}
			}
		}(w)
	}
	wg.Wait()
	_ = m.CloseWAL()

	// Bit rot on top of the crash for some seeds: flip one byte in a
	// random surviving segment.
	if seed%3 == 2 {
		names, _ := mem.ReadDir(dir)
		var segs []string
		for _, n := range names {
			if filepath.Ext(n) == ".seg" {
				segs = append(segs, n)
			}
		}
		if len(segs) > 0 {
			name := filepath.Join(dir, segs[rng.Intn(len(segs))])
			if size, _ := mem.Size(name); size > 0 {
				_ = mem.Corrupt(name, rng.Int63n(size))
			}
		}
	}

	// Recover from the surviving bytes (plain MemFS: the fault injector
	// died with the process).
	m2, rec, err := OpenDurable(dir, DurableOptions{FS: mem}, WithRecording())
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer m2.CloseWAL()

	// Theorem 34 across the crash: the recovered schedule passes the
	// full machine check.
	if err := rec.Verify(); err != nil {
		t.Fatalf("recovered schedule rejected: %v", err)
	}

	// Prefix property: per worker, the surviving puts are exactly
	// 0..k_w-1 in order, and the counter equals the total surviving
	// commit count.
	states := rec.States()
	var commits int
	perWorker := make(map[string][]int64)
	lastLSN := rec.CheckpointLSN
	for _, r := range rec.Records {
		if r.LSN < lastLSN {
			t.Fatalf("records out of order: %d after %d", r.LSN, lastLSN)
		}
		lastLSN = r.LSN
		if r.Commit == nil {
			continue
		}
		commits++
		for _, e := range r.Commit.Effects {
			if put, ok := e.Op.(adt.TblPut); ok {
				perWorker[put.K] = append(perWorker[put.K], put.V.(int64))
			}
		}
	}
	if ctr, ok := states["ctr"]; ok {
		if got := ctr.(adt.Counter).N; got != int64(commits) {
			// Commits wholly contained in the checkpoint are no longer
			// records; account for them via the checkpoint base.
			var base int64
			if ck, ok := rec.Checkpoint["ctr"]; ok {
				base = ck.(adt.Counter).N
			}
			if got != base+int64(commits) {
				t.Fatalf("ctr = %d, want %d (checkpoint) + %d (records)", got, base, commits)
			}
		}
	}
	for key, vals := range perWorker {
		// A worker's surviving puts must be a dense ascending run
		// (i0, i0+1, ...) — its transactions committed in order, and the
		// log kept a prefix (possibly offset by a checkpoint that
		// absorbed the earliest ones).
		for j := 1; j < len(vals); j++ {
			if vals[j] != vals[j-1]+1 {
				t.Fatalf("%s: puts %v not a dense run", key, vals)
			}
		}
		if tbl, ok := states["tbl"]; ok && len(vals) > 0 {
			_, v := adt.TblGet{K: key}.Apply(tbl)
			if v != vals[len(vals)-1] {
				t.Fatalf("%s: table says %v, last surviving put %d", key, v, vals[len(vals)-1])
			}
		}
	}

	// The recovered manager serves the recovered state and keeps
	// working: run one more transaction and machine-check the new epoch.
	if len(states) == 4 {
		st, err := m2.State("ctr")
		if err != nil {
			t.Fatalf("recovered manager missing ctr: %v", err)
		}
		if st.(adt.Counter).N != states["ctr"].(adt.Counter).N {
			t.Fatalf("manager state %v != recovered %v", st, states["ctr"])
		}
		if err := m2.Run(func(tx *Tx) error {
			_, err := tx.Write("ctr", adt.CtrAdd{Delta: 1})
			return err
		}); err != nil {
			t.Fatalf("post-recovery commit: %v", err)
		}
		if err := m2.Verify(); err != nil {
			t.Fatalf("post-recovery Verify: %v", err)
		}
	}
}

// TestPoisonedWALDrainFailsLoudly is the manager-level half of the
// poisoned-drain regression: after a commit's WAL append fails (the log
// latches the fault), SyncWAL and CloseWAL — the server's drain path —
// must report the latched error even when their own fsync succeeds,
// never a clean shutdown.
func TestPoisonedWALDrainFailsLoudly(t *testing.T) {
	mem := wal.NewMemFS()
	ffs := wal.NewFaultFS(mem)
	m, _, err := OpenDurable("d", DurableOptions{FS: ffs})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	m.MustRegister("ctr", adt.Counter{})
	if err := m.Run(func(tx *Tx) error {
		_, err := tx.Write("ctr", adt.CtrAdd{Delta: 1})
		return err
	}); err != nil {
		t.Fatalf("commit: %v", err)
	}

	ffs.FailAfter(0)
	if err := m.Run(func(tx *Tx) error {
		_, err := tx.Write("ctr", adt.CtrAdd{Delta: 1})
		return err
	}); !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("commit past fault: err = %v, want ErrInjected", err)
	}

	// Disk heals; the log stays poisoned and the drain must say so.
	ffs.CrashAfter(-1)
	if err := m.SyncWAL(); !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("SyncWAL on a poisoned log: err = %v, want the latched ErrInjected", err)
	}
	if err := m.CloseWAL(); !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("CloseWAL on a poisoned log: err = %v, want the latched ErrInjected", err)
	}
}

// TestOpenDurableRejectsBadOptions pins the boundary validation: a
// nonsensical group-commit window or a data directory that cannot take
// writes must fail OpenDurable loudly at startup, never surface later
// as a hung syncer or a commit-time I/O error.
func TestOpenDurableRejectsBadOptions(t *testing.T) {
	if _, _, err := OpenDurable("d", DurableOptions{
		FS:         wal.NewMemFS(),
		SyncWindow: -time.Millisecond,
	}); err == nil || !strings.Contains(err.Error(), "negative SyncWindow") {
		t.Fatalf("negative SyncWindow: err = %v, want explicit rejection", err)
	}

	// A directory whose writes fail (permissions, full/failing disk) is
	// caught by the write probe before any log state is touched.
	ffs := wal.NewFaultFS(wal.NewMemFS())
	ffs.FailAfter(0)
	if _, _, err := OpenDurable("d", DurableOptions{FS: ffs}); err == nil ||
		!strings.Contains(err.Error(), "not writable") {
		t.Fatalf("unwritable dir: err = %v, want 'not writable'", err)
	}

	// A data-dir path occupied by a regular file is rejected too.
	path := filepath.Join(t.TempDir(), "occupied")
	if werr := os.WriteFile(path, []byte("x"), 0o644); werr != nil {
		t.Fatalf("setup: %v", werr)
	}
	if _, _, err := OpenDurable(path, DurableOptions{}); err == nil {
		t.Fatal("OpenDurable accepted a regular file as data dir")
	}
}
