package nestedtx

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSnapshotRaceBankConservation races RunReadOnly scans against
// committing and aborting transfer writers. Every transfer moves money
// between two accounts inside one transaction, so the total balance is
// invariant; a snapshot that ever sums to anything else has observed a
// torn cut, a tentative version, or an aborted write. Run under -race
// this also hammers the store's publish/read/trim paths.
func TestSnapshotRaceBankConservation(t *testing.T) {
	const (
		accounts = 8
		initial  = int64(1000)
		writers  = 4
		readers  = 4
		rounds   = 300
	)
	errAbort := errors.New("voluntary abort")
	m := NewManager()
	for i := 0; i < accounts; i++ {
		m.MustRegister(fmt.Sprintf("acct%d", i), Account{Balance: initial})
	}
	total := int64(accounts) * initial

	var wg sync.WaitGroup
	var scans atomic.Int64
	fail := make(chan string, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				from := rng.Intn(accounts)
				to := (from + 1 + rng.Intn(accounts-1)) % accounts
				amt := int64(1 + rng.Intn(10))
				abort := rng.Intn(4) == 0
				err := m.RunRetry(10, func(tx *Tx) error {
					res, err := tx.Write(fmt.Sprintf("acct%d", from), AcctWithdraw{Amount: amt})
					if err != nil {
						return err
					}
					if !res.(AcctResult).OK {
						return errAbort
					}
					if _, err := tx.Write(fmt.Sprintf("acct%d", to), AcctDeposit{Amount: amt}); err != nil {
						return err
					}
					if abort {
						// Half-applied transfer rolled back: a snapshot
						// must never see the withdraw without the deposit
						// or either of an aborted pair.
						return errAbort
					}
					return nil
				})
				if err != nil && !errors.Is(err, errAbort) && !errors.Is(err, ErrDeadlock) {
					fail <- fmt.Sprintf("writer: %v", err)
					return
				}
			}
		}(int64(w))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(1000 + seed))
			for i := 0; i < rounds; i++ {
				err := m.RunReadOnly(func(s *Snapshot) error {
					var sum int64
					// Scan in random order: conservation must hold
					// regardless of visit order within one snapshot.
					for _, j := range rng.Perm(accounts) {
						v, err := s.Read(fmt.Sprintf("acct%d", j), AcctBalance{})
						if err != nil {
							return err
						}
						sum += v.(int64)
					}
					if sum != total {
						return fmt.Errorf("snapshot at seq %d sums to %d, want %d", s.Seq(), sum, total)
					}
					scans.Add(1)
					return nil
				})
				if err != nil {
					fail <- fmt.Sprintf("reader: %v", err)
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Final committed balances conserve too.
	var sum int64
	for i := 0; i < accounts; i++ {
		st, err := m.State(fmt.Sprintf("acct%d", i))
		if err != nil {
			t.Fatal(err)
		}
		sum += st.(Account).Balance
	}
	if sum != total {
		t.Fatalf("final balances sum to %d, want %d", sum, total)
	}
	if scans.Load() == 0 {
		t.Fatal("no snapshot scans completed")
	}
	if got := m.Metrics().Snapshot().SnapPinned; got != 0 {
		t.Fatalf("%d pins leaked", got)
	}
}
