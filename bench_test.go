// Benchmark harness: one bench per experiment in EXPERIMENTS.md (E1–E8),
// plus micro-benchmarks of the hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The E-benchmarks report domain metrics (tx/s, events/op) alongside the
// standard ns/op, so the EXPERIMENTS.md tables can be regenerated from
// their output; cmd/txsim and cmd/txverify print the same data as tables.
package nestedtx_test

import (
	"fmt"
	"math/rand"
	"testing"

	"nestedtx"

	"nestedtx/internal/adt"
	"nestedtx/internal/checker"
	"nestedtx/internal/core"
	"nestedtx/internal/event"
	"nestedtx/internal/object"
	"nestedtx/internal/sim"
	"nestedtx/internal/system"
	"nestedtx/internal/tree"
)

// genCfg is the standard random-system shape used by the formal-model
// benchmarks.
var genCfg = system.GenConfig{
	Objects: 3, TopLevel: 3, MaxDepth: 2, MaxFanout: 3,
	ReadFraction: 0.5, SubProb: 0.5, SeqProb: 0.5,
}

// BenchmarkE1SerialCorrectnessCheck measures the full E1 pipeline: drive a
// random R/W Locking system to a concurrent schedule and machine-check
// Theorem 34 at every non-orphan transaction.
func BenchmarkE1SerialCorrectnessCheck(b *testing.B) {
	var events int
	for i := 0; i < b.N; i++ {
		seed := int64(i)
		rng := rand.New(rand.NewSource(seed))
		sys, err := system.Generate(rng, genCfg)
		if err != nil {
			b.Fatal(err)
		}
		sched, err := sys.RunConcurrent(system.DriverConfig{Seed: seed, AbortProb: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		if err := checker.CheckAll(sched, sys.SystemType()); err != nil {
			b.Fatal(err)
		}
		events += len(sched)
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkE2ExclusiveDegeneration is E1 with every access treated as a
// write: the degenerated (exclusive-locking) system must verify equally.
func BenchmarkE2ExclusiveDegeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seed := int64(i)
		rng := rand.New(rand.NewSource(seed))
		sys, err := system.Generate(rng, genCfg)
		if err != nil {
			b.Fatal(err)
		}
		sched, err := sys.RunConcurrent(system.DriverConfig{Seed: seed, AbortProb: 0.1, Mode: core.Exclusive})
		if err != nil {
			b.Fatal(err)
		}
		if err := checker.CheckAll(sched, sys.SystemType()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWorkload runs one sim workload inside a benchmark iteration loop
// and reports committed-transactions/sec.
func benchWorkload(b *testing.B, w sim.Workload) {
	b.Helper()
	var committed, seconds float64
	for i := 0; i < b.N; i++ {
		w.Seed = int64(i + 1)
		res, err := sim.Run(w)
		if err != nil {
			b.Fatal(err)
		}
		committed += float64(res.Committed)
		seconds += res.Duration.Seconds()
	}
	if seconds > 0 {
		b.ReportMetric(committed/seconds, "tx/s")
	}
}

// BenchmarkE3ReadFractionSweep: R/W locking vs exclusive vs serial as the
// read fraction rises (the paper's central qualitative claim).
func BenchmarkE3ReadFractionSweep(b *testing.B) {
	for _, frac := range []float64{0, 0.5, 0.9} {
		base := sim.Workload{
			Objects: 4, Transactions: 48, Concurrency: 8,
			Depth: 0, OpsPerLeaf: 4, WriterOps: 1,
			ReadTxFraction: frac, HotspotFraction: 0.5, ThinkNs: 200000,
		}
		if frac == 0 {
			base.ReadTxFraction = -1
			base.OpsPerLeaf = 1
		}
		b.Run(fmt.Sprintf("rw/read=%.0f%%", frac*100), func(b *testing.B) {
			benchWorkload(b, base)
		})
		excl := base
		excl.Exclusive = true
		b.Run(fmt.Sprintf("exclusive/read=%.0f%%", frac*100), func(b *testing.B) {
			benchWorkload(b, excl)
		})
		serial := base
		serial.Sequential = true
		serial.Concurrency = 1
		b.Run(fmt.Sprintf("serial/read=%.0f%%", frac*100), func(b *testing.B) {
			benchWorkload(b, serial)
		})
	}
}

// BenchmarkE4NestingDepth: throughput as nesting deepens at fixed leaf
// work.
func BenchmarkE4NestingDepth(b *testing.B) {
	for _, depth := range []int{0, 1, 2, 3} {
		w := sim.Workload{
			Objects: 16, Transactions: 32, Concurrency: 8,
			Depth: depth, Fanout: 2, OpsPerLeaf: 2, ReadFraction: 1,
			ThinkNs: 200000,
		}
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			benchWorkload(b, w)
		})
	}
}

// BenchmarkE5AbortRate: recovery under rising voluntary-abort rates.
func BenchmarkE5AbortRate(b *testing.B) {
	for _, p := range []float64{0, 0.2, 0.5} {
		w := sim.Workload{
			Objects: 16, Transactions: 32, Concurrency: 8,
			Depth: 2, Fanout: 2, OpsPerLeaf: 2,
			ReadTxFraction: 0.5, WriterOps: 1, ThinkNs: 50000,
			AbortProb: p,
		}
		b.Run(fmt.Sprintf("abort=%.0f%%", p*100), func(b *testing.B) {
			benchWorkload(b, w)
		})
	}
}

// BenchmarkE6LockChainInvariant: high-contention stress with Lemma 21
// checked each iteration.
func BenchmarkE6LockChainInvariant(b *testing.B) {
	w := sim.Workload{
		Objects: 1, Transactions: 24, Concurrency: 8,
		Depth: 1, Fanout: 2, OpsPerLeaf: 2, ReadFraction: 0.5,
		HotspotFraction: 1,
	}
	for i := 0; i < b.N; i++ {
		w.Seed = int64(i + 1)
		res, err := sim.Run(w)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Manager.CheckInvariants(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7InheritanceOverhead: the same single access wrapped in
// deeper and deeper committing chains; the delta is the cost of lock
// inheritance per level.
func BenchmarkE7InheritanceOverhead(b *testing.B) {
	for _, depth := range []int{0, 2, 4, 8} {
		b.Run(fmt.Sprintf("chain=%d", depth), func(b *testing.B) {
			m := nestedtx.NewManager()
			m.MustRegister("x", nestedtx.Counter{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var body func(tx *nestedtx.Tx) error
				remaining := depth
				body = func(tx *nestedtx.Tx) error {
					if remaining == 0 {
						_, err := tx.Do("x", nestedtx.CtrAdd{Delta: 1})
						return err
					}
					remaining--
					return tx.Sub(body)
				}
				remaining = depth
				if err := m.Run(body); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8Equieffectiveness: the probe-based equieffectiveness test of
// §4.1 on register schedules (the semantic-condition harness).
func BenchmarkE8Equieffectiveness(b *testing.B) {
	st := event.NewSystemType()
	st.DefineObject("X", adt.NewRegister(int64(0)))
	parent := tree.TID("T0.0")
	var alpha event.Schedule
	cur := int64(0)
	for i := 0; i < 16; i++ {
		id := parent.Child(i)
		if i%2 == 0 {
			st.MustDefineAccess(id, "X", adt.RegWrite{V: int64(i)})
			cur = int64(i)
		} else {
			st.MustDefineAccess(id, "X", adt.RegRead{})
		}
		alpha = append(alpha,
			event.Event{Kind: event.Create, T: id},
			event.Event{Kind: event.RequestCommit, T: id, Value: cur})
	}
	beta := alpha.Filter(func(e event.Event) bool { return st.IsWriteAccess(e.T) })
	probe := tree.TID("T0.0").Child(99)
	st.MustDefineAccess(probe, "X", adt.RegRead{})
	probes := []event.Schedule{{
		{Kind: event.Create, T: probe},
		{Kind: event.RequestCommit, T: probe, Value: cur},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !object.Equieffective(st, "X", alpha, beta, probes) {
			b.Fatal("write-equal schedules must be equieffective")
		}
	}
}

// --- Micro-benchmarks of the runtime hot paths -------------------------

func BenchmarkAcquireUncontendedWrite(b *testing.B) {
	m := nestedtx.NewManager()
	m.MustRegister("x", nestedtx.Counter{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Run(func(tx *nestedtx.Tx) error {
			_, err := tx.Do("x", nestedtx.CtrAdd{Delta: 1})
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAcquireSharedReads(b *testing.B) {
	m := nestedtx.NewManager()
	m.MustRegister("x", nestedtx.Counter{})
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := m.Run(func(tx *nestedtx.Tx) error {
				_, err := tx.Do("x", nestedtx.CtrGet{})
				return err
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRecordingOverhead(b *testing.B) {
	m := nestedtx.NewManager(nestedtx.WithRecording())
	m.MustRegister("x", nestedtx.Counter{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Run(func(tx *nestedtx.Tx) error {
			_, err := tx.Do("x", nestedtx.CtrAdd{Delta: 1})
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVisibleComputation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sys, err := system.Generate(rng, genCfg)
	if err != nil {
		b.Fatal(err)
	}
	sched, err := sys.RunConcurrent(system.DriverConfig{Seed: 1, AbortProb: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sched.Visible(tree.Root)
	}
}

func BenchmarkCheckerWitness(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	sys, err := system.Generate(rng, genCfg)
	if err != nil {
		b.Fatal(err)
	}
	sched, err := sys.RunConcurrent(system.DriverConfig{Seed: 2, AbortProb: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checker.Check(sched, sys.SystemType(), tree.Root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9EngineComparison: Moss R/W locking vs Reed-style MVTO on
// identical flat workloads (the paper's cited alternative as baseline).
func BenchmarkE9EngineComparison(b *testing.B) {
	for _, frac := range []float64{0.25, 0.9} {
		w := sim.Workload{
			Objects: 8, Transactions: 48, Concurrency: 8,
			Depth: 0, OpsPerLeaf: 4, WriterOps: 1,
			ReadTxFraction: frac, HotspotFraction: 0.5, ThinkNs: 200000,
		}
		b.Run(fmt.Sprintf("locking/read=%.0f%%", frac*100), func(b *testing.B) {
			benchWorkload(b, w)
		})
		b.Run(fmt.Sprintf("mvto/read=%.0f%%", frac*100), func(b *testing.B) {
			var committed, seconds float64
			for i := 0; i < b.N; i++ {
				w.Seed = int64(i + 1)
				res, err := sim.RunMVTO(w)
				if err != nil {
					b.Fatal(err)
				}
				committed += float64(res.Committed)
				seconds += res.Duration.Seconds()
			}
			if seconds > 0 {
				b.ReportMetric(committed/seconds, "tx/s")
			}
		})
	}
}
