package nestedtx

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestStateNeverSeesUncommittedWrite is the STATE dirty-read regression
// test: a writer holds a write lock on x with a tentative version, and a
// concurrent State must answer the committed value. Before the fix,
// Manager.State read lockmgr.CurrentState — the *least* write-lock
// holder's version — and returned the uncommitted (and here eventually
// aborted) write.
func TestStateNeverSeesUncommittedWrite(t *testing.T) {
	m := NewManager()
	m.MustRegister("x", Counter{})
	locked := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- m.Run(func(tx *Tx) error {
			if _, err := tx.Write("x", CtrAdd{Delta: 7}); err != nil {
				return err
			}
			close(locked)
			<-release
			return errors.New("voluntary abort")
		})
	}()
	<-locked
	// The writer holds the write lock with tentative value 7.
	st, err := m.State("x")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(Counter).N; got != 0 {
		t.Fatalf("State observed a live writer's uncommitted version: got %d, want 0", got)
	}
	close(release)
	if err := <-done; err == nil {
		t.Fatal("writer was supposed to abort")
	}
	// The write aborted: State must never have been able to observe it.
	st, err = m.State("x")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(Counter).N; got != 0 {
		t.Fatalf("State observed an aborted write: got %d, want 0", got)
	}
	// A committed write, by contrast, must show up.
	if err := m.Run(func(tx *Tx) error {
		_, err := tx.Write("x", CtrAdd{Delta: 3})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	st, err = m.State("x")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(Counter).N; got != 3 {
		t.Fatalf("State after commit: got %d, want 3", got)
	}
}

func TestStateUnregistered(t *testing.T) {
	m := NewManager()
	if _, err := m.State("nope"); err == nil {
		t.Fatal("State of an unregistered object succeeded")
	}
}

func TestRunReadOnlyPinsConsistentCut(t *testing.T) {
	m := NewManager()
	m.MustRegister("a", Counter{})
	m.MustRegister("b", Counter{})
	bump := func(delta int64) {
		if err := m.Run(func(tx *Tx) error {
			if _, err := tx.Write("a", CtrAdd{Delta: delta}); err != nil {
				return err
			}
			_, err := tx.Write("b", CtrAdd{Delta: -delta})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	bump(10)
	s := m.BeginSnapshot()
	defer s.Close()
	seq := s.Seq()
	// Writers commit after the pin: the snapshot must not see them.
	bump(5)
	bump(7)
	va, err := s.Read("a", CtrGet{})
	if err != nil {
		t.Fatal(err)
	}
	vb, err := s.Read("b", CtrGet{})
	if err != nil {
		t.Fatal(err)
	}
	if va.(int64) != 10 || vb.(int64) != -10 {
		t.Fatalf("snapshot at seq %d read a=%v b=%v, want 10/-10", seq, va, vb)
	}
	// Repeatable: a second read answers the same.
	va2, _ := s.Read("a", CtrGet{})
	if va2.(int64) != 10 {
		t.Fatalf("snapshot read not repeatable: %v then %v", va, va2)
	}
	// A fresh snapshot sees the later commits.
	err = m.RunReadOnly(func(s2 *Snapshot) error {
		v, err := s2.Read("a", CtrGet{})
		if err != nil {
			return err
		}
		if v.(int64) != 22 {
			return fmt.Errorf("fresh snapshot read a=%v, want 22", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRejectsWritesAndClosedReads(t *testing.T) {
	m := NewManager()
	m.MustRegister("x", Counter{})
	s := m.BeginSnapshot()
	if _, err := s.Read("x", CtrAdd{Delta: 1}); err == nil {
		t.Fatal("snapshot accepted a write operation")
	}
	if _, err := s.Read("nope", CtrGet{}); err == nil {
		t.Fatal("snapshot read an unregistered object")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close is documented idempotent")
	}
	if _, err := s.Read("x", CtrGet{}); !errors.Is(err, ErrDone) {
		t.Fatalf("read after Close: got %v, want ErrDone", err)
	}
}

func TestSnapshotNeverSeesAbortedWriter(t *testing.T) {
	m := NewManager()
	m.MustRegister("x", Counter{})
	locked := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- m.Run(func(tx *Tx) error {
			if _, err := tx.Write("x", CtrAdd{Delta: 99}); err != nil {
				return err
			}
			close(locked)
			<-release
			return errors.New("abort")
		})
	}()
	<-locked
	err := m.RunReadOnly(func(s *Snapshot) error {
		v, err := s.Read("x", CtrGet{})
		if err != nil {
			return err
		}
		if v.(int64) != 0 {
			return fmt.Errorf("snapshot saw uncommitted write: %v", v)
		}
		return nil
	})
	close(release)
	<-done
	if err != nil {
		t.Fatal(err)
	}
}

// TestVerifyPlacesSnapshots runs a mixed locking/snapshot workload under
// recording and requires Verify to accept the combined history — the S9
// checker placing each snapshot transaction at its pin point.
func TestVerifyPlacesSnapshots(t *testing.T) {
	m := NewManager(WithRecording())
	for i := 0; i < 4; i++ {
		m.MustRegister(fmt.Sprintf("x%d", i), Counter{})
	}
	for round := 0; round < 20; round++ {
		if err := m.Run(func(tx *Tx) error {
			for i := 0; i < 4; i++ {
				if _, err := tx.Write(fmt.Sprintf("x%d", i), CtrAdd{Delta: 1}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := m.RunReadOnly(func(s *Snapshot) error {
			var first int64 = -1
			for i := 0; i < 4; i++ {
				v, err := s.Read(fmt.Sprintf("x%d", i), CtrGet{})
				if err != nil {
					return err
				}
				if first == -1 {
					first = v.(int64)
				} else if v.(int64) != first {
					return fmt.Errorf("torn snapshot: x0=%d x%d=%d", first, i, v)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify rejected a clean mixed history: %v", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	met := m.Metrics().Snapshot()
	if met.SnapTxs != 20 || met.SnapReads != 80 {
		t.Fatalf("snapshot metrics: txs=%d reads=%d, want 20/80", met.SnapTxs, met.SnapReads)
	}
	if met.SnapPinned != 0 {
		t.Fatalf("%d pins leaked", met.SnapPinned)
	}
	if met.SnapPublishes != 20 {
		t.Fatalf("publishes=%d, want 20", met.SnapPublishes)
	}
}

// TestSnapshotLateRegistration pins before an object exists; the read
// must fail with a clear error rather than show a state from the future.
func TestSnapshotLateRegistration(t *testing.T) {
	m := NewManager()
	m.MustRegister("x", Counter{})
	s := m.BeginSnapshot()
	defer s.Close()
	// Advance the commit sequence past the pin, then register: the
	// object's base version lands strictly above the pinned prefix.
	if err := m.Run(func(tx *Tx) error {
		_, err := tx.Write("x", CtrAdd{Delta: 1})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	m.MustRegister("late", Counter{N: 5})
	if _, err := s.Read("late", CtrGet{}); err == nil || !strings.Contains(err.Error(), "no version") {
		t.Fatalf("read of late-registered object: got %v, want no-version error", err)
	}
	err := m.RunReadOnly(func(s2 *Snapshot) error {
		v, err := s2.Read("late", CtrGet{})
		if err != nil {
			return err
		}
		if v.(int64) != 5 {
			return fmt.Errorf("late object read %v, want 5", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
