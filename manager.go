package nestedtx

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"nestedtx/internal/checker"
	"nestedtx/internal/core"
	"nestedtx/internal/dst/clock"
	"nestedtx/internal/event"
	"nestedtx/internal/lockmgr"
	"nestedtx/internal/obs"
	"nestedtx/internal/snap"
	"nestedtx/internal/tree"
	"nestedtx/internal/wal"
)

// ErrDeadlock is returned by an access when its transaction was chosen as
// the victim of a deadlock cycle; the transaction should be aborted (and
// may be retried, see [Tx.SubRetry] and [Manager.RunRetry]).
var ErrDeadlock = lockmgr.ErrDeadlock

// ErrAborted is returned by operations on a transaction that has already
// aborted (for example because an enclosing transaction aborted it).
var ErrAborted = errors.New("nestedtx: transaction aborted")

// ErrDone is returned by operations on a transaction whose body has
// already returned.
var ErrDone = errors.New("nestedtx: transaction already finished")

// Stats counts lock-manager activity during a run.
type Stats = lockmgr.Stats

// Option configures a Manager.
type Option func(*options)

type options struct {
	record    bool
	exclusive bool
	traceCap  int
	shards    int
	clk       clock.Clock
}

// WithRecording makes the manager record the formal event schedule of the
// run, enabling [Manager.Verify] and [Manager.WriteSchedule]. Recording
// costs one slice append per formal operation.
func WithRecording() Option { return func(o *options) { o.record = true } }

// WithExclusiveLocking treats every access as a write access. Per the
// paper (§4.3), Moss' algorithm then degenerates into pure exclusive
// locking — the baseline system of Lynch & Merritt. Intended for
// comparison experiments.
func WithExclusiveLocking() Option { return func(o *options) { o.exclusive = true } }

// WithTracing keeps a bounded ring buffer of the most recent capacity
// runtime trace entries — transaction lifecycle events in the formal
// vocabulary (CREATE, REQUEST_COMMIT, COMMIT, ABORT) plus lock waits and
// acquisitions — dumpable at any time via [Manager.Metrics]. Unlike
// [WithRecording], whose schedule grows without bound for Verify,
// tracing costs fixed memory and is safe to leave on in production.
func WithTracing(capacity int) Option { return func(o *options) { o.traceCap = capacity } }

// WithClock injects the time source the manager's deadlock-retry
// backoffs sleep on. The default is the wall clock; the deterministic
// simulator (internal/dst) injects its virtual clock so a seeded run's
// backoff schedule is a function of the seed, not of wall-clock
// scheduling. nil selects the default.
func WithClock(c clock.Clock) Option { return func(o *options) { o.clk = c } }

// WithLockShards sets the number of independent lock-manager shards the
// object universe is hash-partitioned into. n < 1 (the default) selects
// runtime.GOMAXPROCS(0). More shards means less mutex contention between
// transactions with disjoint footprints; a deadlock cycle spanning shards
// is still detected (the walk escalates to an all-shard snapshot), it
// just costs more than a shard-local one.
func WithLockShards(n int) Option { return func(o *options) { o.shards = n } }

// Manager owns a universe of named shared objects and runs top-level
// transactions against them. A Manager is safe for concurrent use.
type Manager struct {
	lm   *lockmgr.Manager
	rec  *event.Recorder
	mode core.Mode
	met  *obs.Metrics
	// wal, when non-nil, makes the manager durable: every top-level
	// commit appends its redo record and waits for the fsync before its
	// locks are released (see OpenDurable).
	wal *wal.Log

	// snap is the committed-version store behind read-only snapshot
	// transactions: every top-level commit publishes its new root
	// versions there (inside commitTop, before the locks are released),
	// and BeginSnapshot readers pin a sequence number and read from it
	// without ever touching the lock manager.
	snap *snap.Store

	mu      sync.Mutex
	st      *event.SystemType
	nextTop int

	// snapMu guards the read-only transaction records kept for Verify
	// (recording mode only) and the snapshot id counter.
	snapMu   sync.Mutex
	snapTxs  []checker.SnapTx
	nextSnap int

	// clk is the time source for retry backoffs (WithClock; the wall
	// clock by default).
	clk clock.Clock
}

// NewManager returns an empty Manager.
func NewManager(opts ...Option) *Manager {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	var rec *event.Recorder
	if o.record {
		rec = event.NewRecorder()
		// The root transaction T0 (modelling the external environment) is
		// created once, up front; its creation starts every well-formed
		// schedule of the root automaton.
		rec.Record(event.Event{Kind: event.Create, T: tree.Root})
	}
	mode := core.ReadWrite
	if o.exclusive {
		mode = core.Exclusive
	}
	met := &obs.Metrics{}
	if o.traceCap > 0 {
		met.Tracer = obs.NewTracer(o.traceCap)
	}
	return &Manager{
		lm:   lockmgr.NewSharded(rec, mode, met, o.shards),
		rec:  rec,
		mode: mode,
		met:  met,
		snap: snap.New(o.record),
		st:   event.NewSystemType(),
		clk:  clock.Or(o.clk),
	}
}

// Register declares a shared object. It must be called before any
// transaction touches the object. On a durable manager the registration
// is itself logged (so recovery is self-contained), which restricts
// initial states to the library's serialisable types.
func (m *Manager) Register(name string, initial State) error {
	if m.wal != nil {
		if m.lm.Registered(name) {
			return fmt.Errorf("nestedtx: object %q already registered", name)
		}
		rec := wal.Record{Register: &wal.RegisterRecord{Name: name, Initial: initial}}
		return m.wal.AppendApply(rec, func() error {
			return m.adopt(name, initial)
		})
	}
	return m.adopt(name, initial)
}

// adopt installs an object into the system type and lock manager without
// logging (shared by Register and OpenDurable's recovery path).
func (m *Manager) adopt(name string, initial State) error {
	m.mu.Lock()
	m.st.DefineObject(name, initial)
	m.mu.Unlock()
	if err := m.lm.Register(name, initial); err != nil {
		return err
	}
	m.snap.Base(name, initial)
	return nil
}

// MustRegister is Register, panicking on error.
func (m *Manager) MustRegister(name string, initial State) {
	if err := m.Register(name, initial); err != nil {
		panic(err)
	}
}

// State returns the committed-to-root state of an object: the root's
// version in M(X)'s version map, reflecting exactly the top-level
// transactions whose commits have reached the object. The answer is
// always some committed prefix of the history — never a live writer's
// tentative version, and never a write that later aborts. Transactions
// may commit concurrently with the call; a commit in flight lands
// either entirely before or entirely after the read for this object.
// For a multi-object consistent cut, use [Manager.RunReadOnly].
func (m *Manager) State(name string) (State, error) {
	return m.lm.CommittedState(name)
}

// Stats returns a copy of the lock-manager counters.
func (m *Manager) Stats() Stats { return m.lm.Stats() }

// LockShards returns the number of lock-manager shards in use.
func (m *Manager) LockShards() int { return m.lm.ShardCount() }

// Metrics returns the manager's live metrics registry: latency
// histograms, outcome counters, contention gauges and (with
// [WithTracing]) the bounded event trace ring. The registry is always
// present and safe for concurrent use; reading it never blocks
// transaction progress.
func (m *Manager) Metrics() *obs.Metrics { return m.met }

// Run executes fn as a top-level transaction (a child of the mythical root
// T0). If fn returns nil the transaction commits — its effects become
// visible to subsequent transactions; otherwise it aborts and every effect
// of it and its descendants is rolled back. A panic in fn aborts the
// transaction and re-panics.
func (m *Manager) Run(fn func(*Tx) error) error {
	m.mu.Lock()
	id := tree.Root.Child(m.nextTop)
	m.nextTop++
	m.mu.Unlock()
	return m.runTx(id, fn)
}

// RunRetry is Run, retrying up to attempts times when the transaction
// fails with ErrDeadlock, with jittered exponential backoff between
// attempts to break victim livelock. attempts values below 1 are clamped
// to 1: fn always executes at least once.
func (m *Manager) RunRetry(attempts int, fn func(*Tx) error) error {
	attempts = clampAttempts(attempts)
	var err error
	for i := 0; i < attempts; i++ {
		err = m.Run(fn)
		if !errors.Is(err, ErrDeadlock) {
			return err
		}
		m.clk.Sleep(backoffDur(i))
	}
	return err
}

// runTx creates, executes and returns (commits or aborts) transaction id.
func (m *Manager) runTx(id tree.TID, fn func(*Tx) error) error {
	m.rec.RecordAll(
		event.Event{Kind: event.RequestCreate, T: id},
		event.Event{Kind: event.Create, T: id},
	)
	start := time.Now()
	m.met.Trace(event.Create.String(), string(id), "", 0)
	tx := &Tx{mgr: m, id: id, cancel: make(chan struct{})}
	err := tx.execute(fn)
	if err != nil {
		m.lm.Abort(id)
		d := time.Since(start)
		m.met.ObserveTx(d, false)
		m.met.Trace(event.Abort.String(), string(id), "", d)
		return err
	}
	return m.commitTop(id, tx, start)
}

// commitTop runs the top-level commit sequence shared by runTx and
// RunCtx. On a durable manager the redo record is appended and fsynced
// *before* the lock manager releases the transaction's locks: strict
// locking then guarantees that any conflicting successor is granted (and
// so logged) after us, making WAL order agree with the per-object
// conflict order — the property recovery's Theorem-34 check relies on.
// A failed append aborts the transaction instead of committing it: no
// acknowledged commit is ever absent from the log.
func (m *Manager) commitTop(id tree.TID, tx *Tx, start time.Time) error {
	v := tx.result()
	apply := func() error {
		m.rec.Record(event.Event{Kind: event.RequestCommit, T: id, Value: v})
		m.met.Trace(event.RequestCommit.String(), string(id), "", 0)
		// Publish the transaction's new root versions into the snapshot
		// store before the lock manager releases its locks: strict
		// locking then guarantees any conflicting successor publishes
		// after us, so snapshot order = conflict order = WAL order.
		if up := m.lm.TopVersions(id); len(up) > 0 {
			m.snap.Publish(string(id), up)
			m.met.ObserveSnapPublish()
		}
		m.lm.Commit(id, v)
		return nil
	}
	// Both branches route through the same error check: a failing apply
	// (or a failed durable append) aborts the transaction — the callback
	// can never fail silently.
	var err error
	if m.wal != nil {
		rec := wal.Record{Commit: &wal.CommitRecord{TID: string(id), Value: v, Effects: tx.takeEffects()}}
		err = m.wal.AppendApply(rec, apply)
	} else {
		err = apply()
	}
	if err != nil {
		m.lm.Abort(id)
		d := time.Since(start)
		m.met.ObserveTx(d, false)
		m.met.Trace(event.Abort.String(), string(id), "", d)
		if m.wal != nil {
			return fmt.Errorf("nestedtx: durable commit of %s: %w", id, err)
		}
		return fmt.Errorf("nestedtx: commit of %s: %w", id, err)
	}
	d := time.Since(start)
	m.met.ObserveTx(d, true)
	m.met.Trace(event.Commit.String(), string(id), "", d)
	return nil
}

// Schedule returns a snapshot of the recorded formal schedule (nil without
// [WithRecording]).
func (m *Manager) Schedule() event.Schedule { return m.rec.Snapshot() }

// SystemType returns the dynamically grown system type of the run so far.
func (m *Manager) SystemType() *event.SystemType {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.st
}

// Verify machine-checks the recorded schedule against the paper's
// correctness condition: it must be a well-formed concurrent schedule,
// its projection at every object must replay on the formal R/W Locking
// object automaton M(X) — pinning the runtime lock manager to the
// paper's pre/postconditions — and it must be serially correct for the
// root and every non-orphan transaction (Theorem 34). When the run
// performed read-only snapshot transactions, it additionally verifies
// the publication log against the locking history and places each
// snapshot transaction at its pin point in the serial order, proving
// the combined history serially correct (or classifying the anomaly;
// see [checker.CheckSnapshots]). It requires [WithRecording] and should
// be called when no transactions are in flight.
//
// Verification cost grows with history size (roughly transactions ×
// events): it is meant for tests and bounded validation runs, not for
// continuously running production histories.
func (m *Manager) Verify() error {
	if m.rec == nil {
		return fmt.Errorf("nestedtx: Verify requires WithRecording")
	}
	sched := m.rec.Snapshot()
	m.mu.Lock()
	st := m.st
	m.mu.Unlock()
	if err := event.WFConcurrent(sched, st); err != nil {
		return fmt.Errorf("nestedtx: recorded schedule ill-formed: %w", err)
	}
	// Replay only objects the schedule touched: M(X) with no events is
	// trivially correct, and scanning the whole schedule once per
	// registered object would make Verify quadratic in the universe
	// size (a simulation registers 2^20 bank accounts and touches a few
	// thousand).
	for _, x := range sched.TouchedObjects(st) {
		if _, err := core.Replay(st, x, m.mode, sched.AtLockObject(st, x)); err != nil {
			return fmt.Errorf("nestedtx: recorded schedule does not replay on formal M(%s): %w", x, err)
		}
	}
	if err := checker.CheckAll(sched, st); err != nil {
		return fmt.Errorf("nestedtx: %w", err)
	}
	m.snapMu.Lock()
	snapTxs := append([]checker.SnapTx(nil), m.snapTxs...)
	m.snapMu.Unlock()
	if err := checker.CheckSnapshots(sched, st, m.snap.Log(), snapTxs); err != nil {
		return fmt.Errorf("nestedtx: %w", err)
	}
	return nil
}

// CheckInvariants verifies the lock-table invariants (Lemma 21) at this
// instant.
func (m *Manager) CheckInvariants() error { return m.lm.CheckInvariants() }

// WriteSchedule dumps the recorded schedule, one operation per line, in
// the paper's notation.
func (m *Manager) WriteSchedule(w io.Writer) error {
	for _, e := range m.rec.Snapshot() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// defineAccess registers a dynamically created access in the system type.
func (m *Manager) defineAccess(a tree.TID, obj string, op Op) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.st.DefineAccess(a, obj, op)
}
