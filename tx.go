package nestedtx

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"nestedtx/internal/event"
	"nestedtx/internal/tree"
	"nestedtx/internal/wal"
)

// Tx is a live transaction. A Tx is created by [Manager.Run], [Tx.Sub] or
// [Tx.Go] and is valid only until its body function returns. The methods
// of a Tx may be called from the goroutine running its body; concurrency
// inside a transaction is expressed by spawning subtransactions with
// [Tx.Go], each of which gets its own Tx.
type Tx struct {
	mgr *Manager
	id  tree.TID

	// cancel closes when the transaction is aborted from outside (an
	// ancestor aborted); blocked accesses unblock with ErrAborted.
	cancel chan struct{}

	mu        sync.Mutex
	nextChild int
	handles   []*Handle
	children  []*Tx // live child transactions (for cascading cancel)
	done      bool
	aborted   bool
	value     Value // optional user result, set by Return
	committed int64 // committed children count (default commit value)
	// effects accumulates the transaction's surviving accesses (its own
	// plus those inherited from committed children, in commit order) for
	// the WAL redo record. Only maintained on durable managers; an
	// aborted subtree's effects are simply dropped with the subtree.
	effects []wal.Effect
}

// ID returns the transaction's name in the paper's tree notation (e.g.
// "T0.2.1").
func (tx *Tx) ID() string { return string(tx.id) }

// Depth returns the nesting depth (top-level transactions have depth 1).
func (tx *Tx) Depth() int { return tx.id.Level() }

// Return sets the transaction's commit value, reported to its parent. If
// never called, the value is the number of committed children.
func (tx *Tx) Return(v Value) {
	tx.mu.Lock()
	tx.value = v
	tx.mu.Unlock()
}

func (tx *Tx) result() Value {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.value != nil {
		return tx.value
	}
	return tx.committed
}

// newChild mints the next child name.
func (tx *Tx) newChild() tree.TID {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	c := tx.id.Child(tx.nextChild)
	tx.nextChild++
	return c
}

func (tx *Tx) checkUsable() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.aborted {
		return ErrAborted
	}
	if tx.done {
		return ErrDone
	}
	return nil
}

// Do performs op on the named object as an access subtransaction, taking a
// read or write lock according to op.ReadOnly(), blocking until Moss'
// locking rule admits it. On success the access has committed and its lock
// is held by tx.
func (tx *Tx) Do(obj string, op Op) (Value, error) {
	if err := tx.checkUsable(); err != nil {
		return nil, err
	}
	a := tx.newChild()
	if err := tx.mgr.defineAccess(a, obj, op); err != nil {
		return nil, err
	}
	tx.mgr.rec.RecordAll(
		event.Event{Kind: event.RequestCreate, T: a},
		event.Event{Kind: event.Create, T: a},
	)
	start := time.Now()
	v, err := tx.mgr.lm.Acquire(tx.id, a, obj, op, tx.cancel)
	tx.mgr.met.ObserveOp(time.Since(start))
	if err != nil {
		// The access never responded; the scheduler aborts it.
		tx.mgr.rec.RecordAll(
			event.Event{Kind: event.Abort, T: a},
			event.Event{Kind: event.ReportAbort, T: a},
		)
		if errors.Is(err, ErrDeadlock) {
			return nil, fmt.Errorf("nestedtx: access %s on %s: %w", a, obj, err)
		}
		return nil, ErrAborted
	}
	tx.mu.Lock()
	tx.committed++
	if tx.mgr.wal != nil {
		tx.effects = append(tx.effects, wal.Effect{Obj: obj, Op: op, Val: v})
	}
	tx.mu.Unlock()
	return v, nil
}

// Read performs a read-only op; it errors if op is not read-only — a
// guard for callers who want the compiler-invisible read/write contract
// checked at run time.
func (tx *Tx) Read(obj string, op Op) (Value, error) {
	if !op.ReadOnly() {
		return nil, fmt.Errorf("nestedtx: Read with non-read-only op %s", op)
	}
	return tx.Do(obj, op)
}

// Write performs a mutating op; it errors if op is read-only.
func (tx *Tx) Write(obj string, op Op) (Value, error) {
	if op.ReadOnly() {
		return nil, fmt.Errorf("nestedtx: Write with read-only op %s", op)
	}
	return tx.Do(obj, op)
}

// Sub runs fn as a subtransaction and waits for it. A nil return commits
// the child (its locks and versions pass to tx); an error aborts it,
// rolling back its effects — tx may continue, retry, or propagate the
// error.
func (tx *Tx) Sub(fn func(*Tx) error) error {
	if err := tx.checkUsable(); err != nil {
		return err
	}
	return tx.runChild(tx.newChild(), fn)
}

// SubRetry is Sub, retrying up to attempts times while fn fails with
// ErrDeadlock, with jittered exponential backoff between attempts.
// attempts values below 1 are clamped to 1: fn always executes at least
// once.
func (tx *Tx) SubRetry(attempts int, fn func(*Tx) error) error {
	attempts = clampAttempts(attempts)
	var err error
	for i := 0; i < attempts; i++ {
		err = tx.Sub(fn)
		if !errors.Is(err, ErrDeadlock) {
			return err
		}
		tx.mgr.clk.Sleep(backoffDur(i))
	}
	return err
}

// clampAttempts normalises a retry budget: a non-positive attempts would
// silently skip the body and report success for a transaction that never
// executed, so every retry entry point runs at least one attempt.
func clampAttempts(attempts int) int {
	if attempts < 1 {
		return 1
	}
	return attempts
}

// backoffDur returns the jittered backoff interval after the attempt'th
// deadlock: uniform over (0, min(50µs·2^attempt, 3.2ms)]. The delay —
// not the shift count — is clamped, so out-of-range attempts (negative,
// or ≥ 64 where the shift itself would overflow) saturate at the cap
// instead of panicking or going negative.
func backoffDur(attempt int) time.Duration {
	const (
		base     = 50 * time.Microsecond
		maxDelay = 64 * base // cap after 6 doublings
	)
	delay := maxDelay
	if attempt < 0 {
		attempt = 0
	}
	if attempt < 7 {
		delay = base << uint(attempt)
	}
	return time.Duration(rand.Int63n(int64(delay)) + 1)
}

// Handle is a concurrent subtransaction started by [Tx.Go].
type Handle struct {
	id       tree.TID
	done     chan struct{}
	err      error
	observed atomic.Bool
}

// Wait blocks until the subtransaction returns and reports whether it
// committed (nil) or aborted (its error). Waiting (from the transaction
// body) marks the outcome observed: a child failure the body saw — and
// chose to tolerate — does not fail the parent.
func (h *Handle) Wait() error {
	h.observed.Store(true)
	<-h.done
	return h.err
}

// ID returns the subtransaction's name.
func (h *Handle) ID() string { return string(h.id) }

// Go starts fn as a concurrent subtransaction — a sibling running in its
// own goroutine — and returns a Handle to await it. The parent's commit
// waits for all spawned subtransactions, so an un-Waited Handle cannot
// outlive its parent.
func (tx *Tx) Go(fn func(*Tx) error) *Handle {
	h := &Handle{done: make(chan struct{})}
	if err := tx.checkUsable(); err != nil {
		h.id = tx.id
		h.err = err
		close(h.done)
		return h
	}
	c := tx.newChild()
	h.id = c
	tx.mu.Lock()
	tx.handles = append(tx.handles, h)
	tx.mu.Unlock()
	go func() {
		defer close(h.done)
		h.err = tx.runChild(c, fn)
	}()
	return h
}

// runChild creates, executes and returns child transaction c.
func (tx *Tx) runChild(c tree.TID, fn func(*Tx) error) error {
	tx.mgr.rec.RecordAll(
		event.Event{Kind: event.RequestCreate, T: c},
		event.Event{Kind: event.Create, T: c},
	)
	tx.mgr.met.Trace(event.Create.String(), string(c), "", 0)
	start := time.Now()
	child := &Tx{mgr: tx.mgr, id: c, cancel: make(chan struct{})}
	tx.mu.Lock()
	tx.children = append(tx.children, child)
	tx.mu.Unlock()
	err := child.execute(fn)
	if err != nil {
		tx.mgr.lm.Abort(c)
		tx.mgr.met.Trace(event.Abort.String(), string(c), "", time.Since(start))
		return err
	}
	v := child.result()
	if tx.mgr.wal != nil {
		// Inherit the child's surviving effects *before* releasing its
		// locks: once lm.Commit runs, a conflicting sibling access can be
		// granted and appended after us, so merging first is what keeps
		// the parent's effect order aligned with the per-object grant
		// order (the WAL's serial-correctness argument rests on this).
		tx.mu.Lock()
		tx.effects = append(tx.effects, child.effects...)
		tx.mu.Unlock()
	}
	tx.mgr.rec.Record(event.Event{Kind: event.RequestCommit, T: c, Value: v})
	tx.mgr.lm.Commit(c, v)
	tx.mgr.met.Trace(event.Commit.String(), string(c), "", time.Since(start))
	tx.mu.Lock()
	tx.committed++
	tx.mu.Unlock()
	return nil
}

// takeEffects transfers ownership of the accumulated effect list to the
// caller (the top-level durable commit).
func (tx *Tx) takeEffects() []wal.Effect {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	e := tx.effects
	tx.effects = nil
	return e
}

// execute runs the body, waits for spawned subtransactions, and leaves the
// Tx finished. It returns the error that should abort the transaction, or
// nil to commit. Panics abort and re-panic.
func (tx *Tx) execute(fn func(*Tx) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			tx.finish(fmt.Errorf("panic: %v", r))
			err = fmt.Errorf("nestedtx: transaction %s panicked: %v", tx.id, r)
			tx.mgr.lm.Abort(tx.id)
			panic(r)
		}
	}()
	err = fn(tx)
	return tx.finish(err)
}

// finish waits for outstanding children (cancelling them first when
// aborting) and marks the Tx done.
func (tx *Tx) finish(err error) error {
	tx.mu.Lock()
	handles := tx.handles
	children := tx.children
	tx.mu.Unlock()
	if err != nil {
		// Aborting: unblock descendants waiting on locks.
		for _, c := range children {
			c.markAborted()
		}
	}
	for _, h := range handles {
		<-h.done
		if err == nil && h.err != nil && !h.observed.Load() {
			// A spawned subtransaction that failed and was never Waited:
			// surface the failure rather than silently committing around
			// an unobserved abort.
			err = fmt.Errorf("nestedtx: unawaited subtransaction %s failed: %w", h.id, h.err)
		}
	}
	tx.mu.Lock()
	tx.done = true
	if err != nil {
		tx.aborted = true
	}
	tx.mu.Unlock()
	return err
}

// markAborted cascades an abort signal down the live subtree.
func (tx *Tx) markAborted() {
	tx.mu.Lock()
	if tx.aborted {
		tx.mu.Unlock()
		return
	}
	tx.aborted = true
	children := tx.children
	select {
	case <-tx.cancel:
	default:
		close(tx.cancel)
	}
	tx.mu.Unlock()
	for _, c := range children {
		c.markAborted()
	}
}
