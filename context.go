package nestedtx

import (
	"context"
	"errors"

	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

// RunCtx is [Manager.Run] with context cancellation: if ctx is cancelled
// while the transaction runs, its blocked accesses unblock with
// [ErrAborted], the transaction aborts and rolls back, and RunCtx returns
// ctx.Err() (joined with the body's error when the body failed for its
// own reasons).
func (m *Manager) RunCtx(ctx context.Context, fn func(*Tx) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	id := tree.Root.Child(m.nextTop)
	m.nextTop++
	m.mu.Unlock()

	m.rec.RecordAll(
		event.Event{Kind: event.RequestCreate, T: id},
		event.Event{Kind: event.Create, T: id},
	)
	tx := &Tx{mgr: m, id: id, cancel: make(chan struct{})}

	// Bridge context cancellation to the transaction's abort cascade.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			tx.markAborted()
		case <-stop:
		}
	}()

	err := tx.execute(fn)
	if ctxErr := ctx.Err(); ctxErr != nil {
		err = joinErrs(ctxErr, err)
	}
	if err != nil {
		m.lm.Abort(id)
		return err
	}
	v := tx.result()
	m.rec.Record(event.Event{Kind: event.RequestCommit, T: id, Value: v})
	m.lm.Commit(id, v)
	return nil
}

// joinErrs merges a context error with the body's error, dropping the
// redundant ErrAborted that cancellation itself induced.
func joinErrs(a, b error) error {
	if b == nil || errors.Is(b, ErrAborted) {
		return a
	}
	return errors.Join(a, b)
}
