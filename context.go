package nestedtx

import (
	"context"
	"errors"
	"time"

	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

// RunCtx is [Manager.Run] with context cancellation: if ctx is cancelled
// while the transaction runs, its blocked accesses unblock with
// [ErrAborted], the transaction aborts and rolls back, and RunCtx returns
// ctx.Err() (joined with the body's error when the body failed for its
// own reasons).
func (m *Manager) RunCtx(ctx context.Context, fn func(*Tx) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	id := tree.Root.Child(m.nextTop)
	m.nextTop++
	m.mu.Unlock()

	m.rec.RecordAll(
		event.Event{Kind: event.RequestCreate, T: id},
		event.Event{Kind: event.Create, T: id},
	)
	start := time.Now()
	m.met.Trace(event.Create.String(), string(id), "", 0)
	tx := &Tx{mgr: m, id: id, cancel: make(chan struct{})}

	// Bridge context cancellation to the transaction's abort cascade.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			tx.markAborted()
		case <-stop:
		}
	}()

	err := tx.execute(fn)
	if ctxErr := ctx.Err(); ctxErr != nil {
		err = joinErrs(ctxErr, err)
	}
	if err != nil {
		m.lm.Abort(id)
		d := time.Since(start)
		m.met.ObserveTx(d, false)
		m.met.Trace(event.Abort.String(), string(id), "", d)
		return err
	}
	return m.commitTop(id, tx, start)
}

// RunRetryCtx is [Manager.RunRetry] with context cancellation: each
// attempt runs under [Manager.RunCtx], and — unlike RunRetry — the
// jittered backoff between attempts is interruptible, so a cancelled
// caller never sleeps through a retry window. It returns ctx's error
// (joined with the last attempt's error, if any) when ctx is cancelled,
// and otherwise behaves like RunRetry. attempts values below 1 are
// clamped to 1: fn always executes at least once (unless ctx is already
// cancelled on entry).
func (m *Manager) RunRetryCtx(ctx context.Context, attempts int, fn func(*Tx) error) error {
	attempts = clampAttempts(attempts)
	var err error
	for i := 0; i < attempts; i++ {
		err = m.RunCtx(ctx, fn)
		if !errors.Is(err, ErrDeadlock) {
			return err
		}
		if i+1 == attempts {
			break
		}
		t := m.clk.NewTimer(backoffDur(i))
		select {
		case <-ctx.Done():
			t.Stop()
			return joinErrs(ctx.Err(), err)
		case <-t.C():
		}
	}
	return err
}

// joinErrs merges a context error with the body's error, dropping the
// redundant ErrAborted that cancellation itself induced.
func joinErrs(a, b error) error {
	if b == nil || errors.Is(b, ErrAborted) {
		return a
	}
	return errors.Join(a, b)
}
