// Command txwal inspects a nestedtx write-ahead log directory without
// modifying it: it scans checkpoints and segments exactly the way crash
// recovery would (same CRC checks, same torn-tail detection) but leaves
// every byte in place, so it is safe to point at a live server's
// -data-dir.
//
// Usage:
//
//	txwal info   [-json] dir                     summarise segments, checkpoint, torn tail
//	txwal dump   [-json] dir                     print every recovered record
//	txwal verify [-json] dir                     machine-check the recovered history
//	txwal tail   [-json] [-follow] [-from-lsn N] dir
//	                                             stream records in LSN order
//
// verify reconstructs the recovered history as a formal schedule and runs
// the full checker pipeline — well-formedness, replay on the M(X)
// automata with value verification, and serial correctness per
// Theorem 34 — answering "would this directory recover, and would the
// result be correct?" before a restart bets on it.
//
// tail reads records the way a replication follower does: it starts at
// -from-lsn (default 0), stops cleanly at a frame still being written,
// and with -follow keeps polling a live directory for new records as the
// server appends them. If the wanted position has been checkpointed away
// (the low-water mark moved past it), tail notes the gap on stderr and
// resumes from the newest checkpoint — the same "records are gone,
// restart from a snapshot" adjudication a follower makes.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"nestedtx/internal/adt"
	"nestedtx/internal/wal"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: txwal {info|dump|verify} [-json] <dir>\n")
	fmt.Fprintf(os.Stderr, "       txwal tail [-json] [-follow] [-from-lsn N] <dir>\n")
}

func main() {
	// Hand-rolled so flags may come before or after the subcommand.
	var jsonOut, follow bool
	var fromLSN uint64
	var pos []string
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-json" || a == "--json":
			jsonOut = true
		case a == "-follow" || a == "--follow":
			follow = true
		case a == "-from-lsn" || a == "--from-lsn":
			i++
			if i >= len(args) {
				usage()
				os.Exit(2)
			}
			n, err := strconv.ParseUint(args[i], 10, 64)
			if err != nil {
				fatal("txwal: bad -from-lsn %q: %v", args[i], err)
			}
			fromLSN = n
		case strings.HasPrefix(a, "-from-lsn=") || strings.HasPrefix(a, "--from-lsn="):
			_, v, _ := strings.Cut(a, "=")
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				fatal("txwal: bad -from-lsn %q: %v", v, err)
			}
			fromLSN = n
		case a == "-h" || a == "-help" || a == "--help":
			usage()
			os.Exit(0)
		default:
			pos = append(pos, a)
		}
	}
	if len(pos) != 2 {
		usage()
		os.Exit(2)
	}
	cmd, dir := pos[0], pos[1]

	if cmd == "tail" {
		tail(dir, fromLSN, follow, jsonOut)
		return
	}
	rec, err := wal.Inspect(dir, nil)
	if err != nil {
		fatal("txwal: %v", err)
	}
	switch cmd {
	case "info":
		info(rec, jsonOut)
	case "dump":
		dump(rec, jsonOut)
	case "verify":
		verify(rec, jsonOut)
	default:
		usage()
		os.Exit(2)
	}
}

// tail streams records from the directory in LSN order, exactly as a
// replication follower reads them. Without -follow it drains what is
// there and exits; with -follow it polls for more.
func tail(dir string, from uint64, follow, jsonOut bool) {
	tl := wal.NewTailer(dir, nil, from)
	for {
		recs, err := tl.Next(512, 1<<20)
		if errors.Is(err, wal.ErrTruncated) {
			// The wanted records were checkpointed away; resume from the
			// newest checkpoint, the way a follower restarts from a
			// leader snapshot.
			rec, ierr := wal.Inspect(dir, nil)
			if ierr != nil {
				fatal("txwal: re-resolve after truncation: %v", ierr)
			}
			if rec.CheckpointLSN <= tl.NextLSN() {
				fatal("txwal: lsn %d is below the log's low-water mark", tl.NextLSN())
			}
			fmt.Fprintf(os.Stderr, "txwal: lsn %d..%d checkpointed away; resuming at checkpoint lsn %d\n",
				tl.NextLSN(), rec.CheckpointLSN-1, rec.CheckpointLSN)
			tl = wal.NewTailer(dir, nil, rec.CheckpointLSN)
			continue
		}
		if err != nil {
			fatal("txwal: tail: %v", err)
		}
		for _, r := range recs {
			printRecord(r, jsonOut)
		}
		if len(recs) == 0 {
			if !follow {
				return
			}
			time.Sleep(200 * time.Millisecond)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

type segmentJSON struct {
	Name     string `json:"name"`
	Size     int64  `json:"size"`
	FirstLSN uint64 `json:"first_lsn"`
	LastLSN  uint64 `json:"last_lsn"`
	Records  int    `json:"records"`
	Torn     bool   `json:"torn,omitempty"`
}

type infoJSON struct {
	CheckpointLSN uint64        `json:"checkpoint_lsn"`
	NextLSN       uint64        `json:"next_lsn"`
	Records       int           `json:"records"`
	Objects       []string      `json:"objects"`
	TornBytes     int64         `json:"torn_bytes,omitempty"`
	Dropped       []string      `json:"dropped,omitempty"`
	Segments      []segmentJSON `json:"segments"`
}

func buildInfo(rec *wal.Recovery) infoJSON {
	out := infoJSON{
		CheckpointLSN: rec.CheckpointLSN,
		NextLSN:       rec.NextLSN,
		Records:       len(rec.Records),
		TornBytes:     rec.TornBytes,
		Dropped:       rec.Dropped,
	}
	for name := range rec.States() {
		out.Objects = append(out.Objects, name)
	}
	sortStrings(out.Objects)
	for _, s := range rec.Segments() {
		out.Segments = append(out.Segments, segmentJSON{
			Name: s.Name, Size: s.Size, FirstLSN: s.FirstLSN,
			LastLSN: s.LastLSN, Records: s.Records, Torn: s.Torn,
		})
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func info(rec *wal.Recovery, jsonOut bool) {
	out := buildInfo(rec)
	if jsonOut {
		emit(out)
		return
	}
	fmt.Printf("checkpoint lsn %d, next lsn %d, %d records, %d objects\n",
		out.CheckpointLSN, out.NextLSN, out.Records, len(out.Objects))
	for _, s := range out.Segments {
		line := fmt.Sprintf("  %s  %7d bytes  ", s.Name, s.Size)
		if s.Records == 0 {
			line += "empty"
		} else {
			line += fmt.Sprintf("lsn %d..%d  %d records", s.FirstLSN, s.LastLSN, s.Records)
		}
		if s.Torn {
			line += "  TORN TAIL"
		}
		fmt.Println(line)
	}
	if out.TornBytes > 0 {
		fmt.Printf("torn tail: %d bytes would be truncated on recovery\n", out.TornBytes)
	}
	for _, d := range out.Dropped {
		fmt.Printf("unreadable (would be set aside): %s\n", d)
	}
}

type recordJSON struct {
	LSN     uint64          `json:"lsn"`
	Kind    string          `json:"kind"`
	TID     string          `json:"tid,omitempty"`
	Object  string          `json:"obj,omitempty"`
	Effects int             `json:"effects,omitempty"`
	Detail  json.RawMessage `json:"detail,omitempty"`
}

func dump(rec *wal.Recovery, jsonOut bool) {
	for _, r := range rec.Records {
		printRecord(r, jsonOut)
	}
}

func printRecord(r wal.Record, jsonOut bool) {
	switch {
	case r.Commit != nil:
		if jsonOut {
			detail, _ := json.Marshal(r.Commit)
			emit(recordJSON{LSN: r.LSN, Kind: "commit", TID: r.Commit.TID,
				Effects: len(r.Commit.Effects), Detail: detail})
			return
		}
		fmt.Printf("%8d  COMMIT   %s  (%d effects)\n", r.LSN, r.Commit.TID, len(r.Commit.Effects))
		for _, e := range r.Commit.Effects {
			op, _ := adt.EncodeOp(e.Op)
			fmt.Printf("          %-12s %s\n", e.Obj, op)
		}
	case r.Register != nil:
		if jsonOut {
			detail, _ := adt.EncodeState(r.Register.Initial)
			emit(recordJSON{LSN: r.LSN, Kind: "register", Object: r.Register.Name, Detail: detail})
			return
		}
		st, _ := adt.EncodeState(r.Register.Initial)
		fmt.Printf("%8d  REGISTER %s = %s\n", r.LSN, r.Register.Name, st)
	}
}

func verify(rec *wal.Recovery, jsonOut bool) {
	err := rec.Verify()
	if jsonOut {
		out := struct {
			OK      bool   `json:"ok"`
			Err     string `json:"err,omitempty"`
			Records int    `json:"records"`
		}{OK: err == nil, Records: len(rec.Records)}
		if err != nil {
			out.Err = err.Error()
		}
		emit(out)
		if err != nil {
			os.Exit(1)
		}
		return
	}
	if err != nil {
		fatal("txwal: verify FAILED: %v", err)
	}
	fmt.Printf("ok: %d records past checkpoint %d replay cleanly and the schedule is serially correct (Theorem 34)\n",
		len(rec.Records), rec.CheckpointLSN)
}

func emit(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal("txwal: %v", err)
	}
}
