// Command txmetrics is the operator's window into a running txserver:
// it dials the server, issues the STATS and METRICS verbs, and prints
// the result either as a human-readable summary or as one JSON object
// (for scripts — the metrics-smoke CI check parses this output).
//
// Usage:
//
//	txmetrics [-addr host:port] [-json] [-dump] [-exercise N] [-obj name]
//
// -dump asks the server to include its trace ring in the METRICS
// response (the server must be running with -trace N for the ring to
// hold anything). In human mode the ring is printed oldest-first, one
// event per line.
//
// -exercise N drives N small committed transactions against -obj (a
// counter object, "counter" by default — the txserver default universe)
// before reading the metrics, so a freshly started server has data in
// every histogram. The metrics-smoke CI check uses this to probe a live
// server end to end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"nestedtx"
	"nestedtx/client"
	"nestedtx/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("txmetrics: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:7654", "txserver address")
		asJSON   = flag.Bool("json", false, "emit one JSON object {stats, metrics} instead of a summary")
		dump     = flag.Bool("dump", false, "include the server's trace ring in the METRICS response")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-call I/O timeout")
		exercise = flag.Int("exercise", 0, "run this many small committed transactions against -obj before reading metrics")
		obj      = flag.String("obj", "counter", "counter object the -exercise workload increments")
	)
	flag.Parse()

	c, err := client.Dial(*addr, client.WithTimeout(*timeout))
	if err != nil {
		log.Fatalf("dial %s: %v", *addr, err)
	}
	defer c.Close()

	for i := 0; i < *exercise; i++ {
		err := c.RunRetry(20, func(tx *client.Tx) error {
			_, err := tx.Write(*obj, nestedtx.CtrAdd{Delta: 1})
			return err
		})
		if err != nil {
			log.Fatalf("exercise tx %d: %v", i, err)
		}
	}

	stats, err := c.Stats()
	if err != nil {
		log.Fatalf("STATS: %v", err)
	}
	met, err := c.Metrics(*dump)
	if err != nil {
		log.Fatalf("METRICS: %v", err)
	}
	// Replication is optional: a server without it answers REPL_STATUS
	// with a wire error, which we simply leave out of the report.
	replStatus, _ := c.ReplStatus()

	if *asJSON {
		out := struct {
			Stats   wire.Stats       `json:"stats"`
			Metrics wire.Metrics     `json:"metrics"`
			Repl    *wire.ReplStatus `json:"repl,omitempty"`
		}{stats, met, replStatus}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("server %s\n", *addr)
	fmt.Printf("  transactions   begun=%d committed=%d aborted=%d (metrics: commits=%d aborts=%d)\n",
		stats.TxBegun, stats.Commits, stats.Aborts, met.TxCommits, met.TxAborts)
	fmt.Printf("  sessions       active=%d total=%d reaped=%d rejected=%d requests=%d\n",
		stats.ActiveSessions, stats.TotalSessions, stats.ReapedSessions,
		stats.RejectedConns, stats.Requests)
	fmt.Printf("  locks          acquires=%d waits=%d deadlocks=%d wakeups=%d\n",
		stats.Acquires, stats.Waits, stats.Deadlocks, stats.Wakeups)
	fmt.Printf("  victims        total=%d deadlock=%d cancelled=%d\n",
		met.Victims, met.VictimsDeadlock, met.VictimsCancelled)
	fmt.Printf("  gauges         queued-waiters=%d contended-objects=%d\n",
		met.QueuedWaiters, met.ContendedObjects)
	printHist("op latency", met.OpLatency)
	printHist("tx latency", met.TxLatency)
	printHist("lock wait", met.LockWait)
	if met.WalAppends > 0 {
		fmt.Printf("  wal            appends=%d fsyncs=%d (%.3f fsyncs/commit) max-batch=%d checkpoints=%d checkpoint-lsn=%d\n",
			met.WalAppends, met.WalFsyncs,
			float64(met.WalFsyncs)/float64(met.WalAppends),
			met.WalMaxBatch, met.WalCheckpoints, met.WalCheckpointLSN)
		printHist("fsync latency", met.FsyncLatency)
	}
	if rs := replStatus; rs != nil {
		switch rs.Role {
		case "leader":
			fmt.Printf("  repl           role=leader next-lsn=%d durable-lsn=%d followers=%d\n",
				rs.NextLSN, rs.DurableLSN, len(rs.Followers))
			for _, fo := range rs.Followers {
				fmt.Printf("    follower     %s ack-lsn=%d lag=%d records %.3fs\n",
					fo.Remote, fo.AckLSN, fo.LagRecords, fo.LagSeconds)
			}
		case "follower":
			fmt.Printf("  repl           role=follower leader=%s connected=%v next-lsn=%d lag=%d records %.3fs\n",
				rs.Leader, rs.Connected, rs.NextLSN, rs.LagRecords, rs.LagSeconds)
		}
	}
	if met.ReplBatches > 0 || met.ReplBatchesApplied > 0 {
		fmt.Printf("  repl metrics   shipped: batches=%d records=%d acks=%d | applied: batches=%d records=%d | followers=%d lag=%d records %.3fs\n",
			met.ReplBatches, met.ReplRecordsShipped, met.ReplAcks,
			met.ReplBatchesApplied, met.ReplRecordsApplied,
			met.ReplFollowers, met.ReplLagRecords, met.ReplLagSeconds)
		printHist("ship latency", met.ShipLatency)
	}
	if met.SnapTxs > 0 || met.SnapPublishes > 0 {
		fmt.Printf("  snapshots      txs=%d reads=%d publishes=%d pinned=%d\n",
			met.SnapTxs, met.SnapReads, met.SnapPublishes, met.SnapPinned)
		printHist("snap read", met.SnapReadLatency)
	}

	if *dump {
		if len(met.Trace) == 0 {
			fmt.Println("  trace          empty (server needs -trace N)")
			return
		}
		fmt.Printf("  trace          %d entries (%d evicted before dump)\n",
			len(met.Trace), met.TraceDropped)
		for _, e := range met.Trace {
			at := time.Unix(0, e.AtUnix).Format("15:04:05.000000")
			fmt.Printf("    #%-8d %s %-14s %s", e.Seq, at, e.Kind, e.T)
			if e.Object != "" {
				fmt.Printf(" obj=%s", e.Object)
			}
			if e.DurNS != 0 {
				fmt.Printf(" dur=%s", time.Duration(e.DurNS))
			}
			fmt.Println()
		}
	}
}

func printHist(name string, h wire.HistQ) {
	fmt.Printf("  %-14s n=%d p50=%s p90=%s p99=%s max=%s\n", name, h.Count,
		time.Duration(h.P50NS), time.Duration(h.P90NS),
		time.Duration(h.P99NS), time.Duration(h.MaxNS))
}
