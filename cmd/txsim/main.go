// Command txsim runs the quantitative experiments (E3–E7, E9) of
// EXPERIMENTS.md against the nestedtx runtime and prints their tables —
// or, with -json, one machine-readable JSON object per experiment row
// (newline-delimited), for tracking the performance trajectory across
// revisions. Every run ends with the lock-table invariant check; any
// checker or invariant failure exits nonzero and prints the
// reproducing invocation (experiment, seed and flags) on one line.
//
// Usage:
//
//	txsim [-exp e3|e4|e5|e7|e9|all] [-seed S] [-json] [-shards N] [-readonly-frac F]
package main

import (
	"flag"
	"fmt"
	"os"

	"nestedtx/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: e3, e4, e5, e7, e9 or all")
	seed := flag.Int64("seed", 1, "workload seed")
	asJSON := flag.Bool("json", false, "emit one JSON object per experiment row instead of tables")
	shards := flag.Int("shards", 0, "lock-manager shard count (0 = GOMAXPROCS)")
	roFrac := flag.Float64("readonly-frac", 0,
		"fraction of transactions routed through read-only snapshot scans instead of locking")
	flag.Parse()
	sim.DefaultLockShards = *shards
	sim.DefaultReadOnlyFraction = *roFrac

	run := func(name string) bool { return *exp == "all" || *exp == name }

	// fail reports a checker/invariant/runtime failure with a one-line
	// reproduction (the experiment plus every flag that shapes it) and
	// exits nonzero.
	fail := func(name string, err error) {
		fmt.Fprintln(os.Stderr, "txsim:", err)
		fmt.Fprintf(os.Stderr, "reproduce: txsim -exp %s -seed %d -shards %d -readonly-frac %g\n",
			name, *seed, *shards, *roFrac)
		os.Exit(1)
	}

	// emit renders one experiment's points as a table or as JSON rows.
	emit := func(name, title string, points []sim.SweepPoint) {
		if *asJSON {
			check(sim.WriteJSON(os.Stdout, name, points))
			return
		}
		check(sim.WriteTable(os.Stdout, title, points))
		fmt.Println()
	}

	if run("e3") {
		points, err := sim.ReadFractionSweep(*seed, []float64{0, 0.25, 0.5, 0.75, 0.9, 1.0})
		if err != nil {
			fail("e3", err)
		}
		emit("e3", "E3: read-fraction sweep (R/W vs exclusive vs serial)", points)
	}
	if run("e4") {
		points, err := sim.DepthSweep(*seed, 4)
		if err != nil {
			fail("e4", err)
		}
		emit("e4", "E4: nesting-depth sweep (concurrent siblings vs serial)", points)
	}
	if run("e5") {
		points, err := sim.AbortSweep(*seed, []float64{0, 0.1, 0.25, 0.5})
		if err != nil {
			fail("e5", err)
		}
		emit("e5", "E5: abort-rate sweep (recovery under load)", points)
	}
	if run("e7") {
		points, err := sim.InheritanceSweep(*seed, []int{0, 1, 2, 4, 6})
		if err != nil {
			fail("e7", err)
		}
		emit("e7", "E7: lock-inheritance chain depth (same work, deeper commits)", points)
	}
	if run("e9") {
		points, err := sim.EngineSweep(*seed, []float64{0, 0.25, 0.5, 0.75, 0.9, 1.0})
		if err != nil {
			fail("e9", err)
		}
		if *asJSON {
			check(sim.WriteEngineJSON(os.Stdout, "e9", points))
		} else {
			check(sim.WriteEngineTable(os.Stdout, "E9: Moss R/W locking vs Reed-style MVTO (flat transactions)", points))
			fmt.Println()
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "txsim:", err)
		os.Exit(1)
	}
}
