// Command txsim runs the quantitative experiments (E3–E7) of
// EXPERIMENTS.md against the nestedtx runtime and prints their tables.
//
// Usage:
//
//	txsim [-exp e3|e4|e5|e7|all] [-seed S] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"nestedtx/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: e3, e4, e5, e7, e9 or all")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	run := func(name string) bool { return *exp == "all" || *exp == name }

	if run("e3") {
		points, err := sim.ReadFractionSweep(*seed, []float64{0, 0.25, 0.5, 0.75, 0.9, 1.0})
		check(err)
		check(sim.WriteTable(os.Stdout, "E3: read-fraction sweep (R/W vs exclusive vs serial)", points))
		fmt.Println()
	}
	if run("e4") {
		points, err := sim.DepthSweep(*seed, 4)
		check(err)
		check(sim.WriteTable(os.Stdout, "E4: nesting-depth sweep (concurrent siblings vs serial)", points))
		fmt.Println()
	}
	if run("e5") {
		points, err := sim.AbortSweep(*seed, []float64{0, 0.1, 0.25, 0.5})
		check(err)
		check(sim.WriteTable(os.Stdout, "E5: abort-rate sweep (recovery under load)", points))
		fmt.Println()
	}
	if run("e7") {
		points, err := sim.InheritanceSweep(*seed, []int{0, 1, 2, 4, 6})
		check(err)
		check(sim.WriteTable(os.Stdout, "E7: lock-inheritance chain depth (same work, deeper commits)", points))
		fmt.Println()
	}
	if run("e9") {
		points, err := sim.EngineSweep(*seed, []float64{0, 0.25, 0.5, 0.75, 0.9, 1.0})
		check(err)
		check(sim.WriteEngineTable(os.Stdout, "E9: Moss R/W locking vs Reed-style MVTO (flat transactions)", points))
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "txsim:", err)
		os.Exit(1)
	}
}
