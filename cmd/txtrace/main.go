// Command txtrace generates one seeded concurrent schedule, prints it in
// the paper's notation, and explains it: the transaction tree with fates,
// visibility relative to a chosen transaction, and the serial
// rearrangement witness the checker constructs for it. It is a study and
// debugging aid for the formal model.
//
// Usage:
//
//	txtrace [-seed S] [-aborts P] [-at T] [-serial]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"nestedtx/internal/checker"
	"nestedtx/internal/event"
	"nestedtx/internal/system"
	"nestedtx/internal/trace"
	"nestedtx/internal/tree"
)

func main() {
	seed := flag.Int64("seed", 1, "seed for system generation and the driver")
	aborts := flag.Float64("aborts", 0.1, "scheduler abort probability")
	at := flag.String("at", "T0", "transaction whose view to explain")
	serialOnly := flag.Bool("serial", false, "print only the serial witness")
	save := flag.String("save", "", "write the run (system type + schedule) to this JSON file")
	load := flag.String("load", "", "read a previously saved run instead of generating one")
	flag.Parse()

	var st *event.SystemType
	var sched event.Schedule
	if *load != "" {
		data, err := os.ReadFile(*load)
		if err != nil {
			fatal(err)
		}
		st, sched, err = event.UnmarshalRun(data)
		if err != nil {
			fatal(err)
		}
	} else {
		rng := rand.New(rand.NewSource(*seed))
		sys, err := system.Generate(rng, system.DefaultGenConfig())
		if err != nil {
			fatal(err)
		}
		sched, err = sys.RunConcurrent(system.DriverConfig{Seed: *seed, AbortProb: *aborts})
		if err != nil {
			fatal(err)
		}
		st = sys.SystemType()
	}
	if *save != "" {
		data, err := event.MarshalRun(st, sched)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*save, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved run to %s\n", *save)
	}
	target := tree.TID(*at)
	if !target.Valid() {
		fatal(fmt.Errorf("invalid transaction name %q", *at))
	}

	if !*serialOnly {
		fmt.Printf("concurrent schedule (seed %d): %s\n\n", *seed, trace.Summary(sched, st))
		if err := trace.WriteNumbered(os.Stdout, sched); err != nil {
			fatal(err)
		}
		fmt.Println("\ntransaction tree:")
		if err := trace.WriteTree(os.Stdout, sched, st); err != nil {
			fatal(err)
		}
		fmt.Println()
		if err := trace.WriteFates(os.Stdout, sched, st); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if sched.IsOrphan(target) {
		fmt.Printf("%s is an orphan; Theorem 34 does not apply to it.\n", target)
		return
	}
	w, err := checker.Check(sched, st, target)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("visible(α,%s): %d of %d events\n", target, len(w.Visible), len(sched))
	fmt.Printf("serial witness (write-equivalent to visible(α,%s)):\n", target)
	if err := trace.WriteNumbered(os.Stdout, w.Serial); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "txtrace:", err)
	os.Exit(1)
}
