// Command txdst runs the deterministic whole-system simulator
// (internal/dst): one seed drives the workload plan, the fault plan and
// virtual time, and every run ends in the S9 machine check. Any failure
// prints a one-line reproduction and exits nonzero.
//
// Usage:
//
//	txdst -list
//	txdst -scenario hotspot -seed 7 [-log] [-scale F]
//	txdst -corpus internal/dst/corpus.txt
//	txdst -mine 2 > internal/dst/corpus.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"nestedtx/internal/dst"
)

func main() {
	scenario := flag.String("scenario", "", "scenario name (see -list)")
	seed := flag.Int64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list scenarios and exit")
	corpus := flag.String("corpus", "", "run every '<scenario> <seed> [scale]' line of this file")
	mine := flag.Int("mine", 0, "emit a corpus: N passing seeds per scenario, written to stdout")
	scale := flag.Float64("scale", 1, "scale the scenario's universe and transaction count")
	dumpLog := flag.Bool("log", false, "print the deterministic event log after the run")
	grain := flag.Duration("grain", 0, "virtual-clock auto-advance poll interval (0 = default)")
	flag.Parse()

	switch {
	case *list:
		for _, s := range dst.Scenarios() {
			fmt.Printf("%-24s %s\n", s.Name, s.Doc)
		}
	case *corpus != "":
		os.Exit(runCorpus(*corpus, *grain))
	case *mine > 0:
		os.Exit(runMine(*mine, *scale, *grain))
	case *scenario != "":
		os.Exit(runOne(*scenario, *seed, *scale, *grain, *dumpLog))
	default:
		fmt.Fprintln(os.Stderr, "txdst: need -scenario, -corpus, -mine or -list")
		flag.Usage()
		os.Exit(2)
	}
}

// runOne executes a single simulation and reports its verdict on one
// line; failures carry the reproduction command.
func runOne(name string, seed int64, scale float64, grain time.Duration, dumpLog bool) int {
	scn, ok := dst.Lookup(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "txdst: unknown scenario %q (try -list)\n", name)
		return 2
	}
	if scale != 1 {
		scn = scn.Scale(scale)
	}
	sim := dst.New(scn, seed)
	sim.Grain = grain
	start := time.Now()
	res := sim.Run()
	elapsed := time.Since(start).Round(time.Millisecond)
	// With -log, stdout carries exactly the deterministic event log (so
	// two invocations of the same seed can be compared with cmp); the
	// status line moves to stderr because it reports wall time and race
	// outcomes, which legitimately differ across runs.
	status := os.Stdout
	if dumpLog {
		os.Stdout.Write(res.Log)
		status = os.Stderr
	}
	if !res.Pass() {
		fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", name, res.Err)
		fmt.Fprintf(os.Stderr, "reproduce: txdst -scenario %s -seed %d\n", name, seed)
		return 1
	}
	fmt.Fprintf(status, "ok   %-24s seed=%-4d committed=%d aborted=%d scans=%d post=%d/%d (%s)\n",
		name, seed, res.Stats.Committed, res.Stats.Aborted, res.Stats.Scans,
		res.Post.Committed, res.Post.Scans, elapsed)
	return 0
}

// runCorpus replays every seed in the corpus file. Lines are
// "<scenario> <seed> [scale]"; '#' starts a comment. All cells run even
// after a failure so one bad seed doesn't hide another.
func runCorpus(path string, grain time.Duration) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "txdst:", err)
		return 2
	}
	defer f.Close()
	rc := 0
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			fmt.Fprintf(os.Stderr, "txdst: %s:%d: want '<scenario> <seed> [scale]'\n", path, line)
			return 2
		}
		seed, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "txdst: %s:%d: bad seed %q\n", path, line, fields[1])
			return 2
		}
		scale := 1.0
		if len(fields) == 3 {
			if scale, err = strconv.ParseFloat(fields[2], 64); err != nil || scale <= 0 {
				fmt.Fprintf(os.Stderr, "txdst: %s:%d: bad scale %q\n", path, line, fields[2])
				return 2
			}
		}
		if runOne(fields[0], seed, scale, grain, false) != 0 {
			rc = 1
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "txdst:", err)
		return 2
	}
	return rc
}

// runMine regenerates the corpus: the first n passing seeds per
// scenario, one line each, written to stdout in corpus format. A
// failing seed is a real finding — it is reported with its reproduction
// line and mining exits nonzero.
func runMine(n int, scale float64, grain time.Duration) int {
	fmt.Printf("# seed corpus mined by txdst -mine %d; lines are '<scenario> <seed> [scale]'\n", n)
	for _, scn := range dst.Scenarios() {
		cell := scn
		if scale != 1 {
			cell = cell.Scale(scale)
		}
		found := 0
		for seed := int64(1); found < n; seed++ {
			sim := dst.New(cell, seed)
			sim.Grain = grain
			res := sim.Run()
			if !res.Pass() {
				fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", scn.Name, res.Err)
				fmt.Fprintf(os.Stderr, "reproduce: txdst -scenario %s -seed %d\n", scn.Name, seed)
				return 1
			}
			if scale != 1 {
				fmt.Printf("%s %d %g\n", scn.Name, seed, scale)
			} else {
				fmt.Printf("%s %d\n", scn.Name, seed)
			}
			fmt.Fprintf(os.Stderr, "mined %s seed=%d\n", scn.Name, seed)
			found++
		}
	}
	return 0
}
