// Command txverify is the driver for experiment E1 (Theorem 34) and E2
// (exclusive-locking degeneration): it generates seeded random R/W Locking
// systems, runs their concurrent schedules, and machine-checks each
// schedule for serial correctness at every non-orphan transaction.
//
// Usage:
//
//	txverify [-runs N] [-seed S] [-aborts P] [-exclusive] [-v]
//
// The exit status is non-zero if any schedule fails verification — which,
// if the theorem (and this implementation) is right, never happens.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"nestedtx/internal/adt"
	"nestedtx/internal/checker"
	"nestedtx/internal/core"
	"nestedtx/internal/event"
	"nestedtx/internal/system"
	"nestedtx/internal/tree"
)

func main() {
	runs := flag.Int("runs", 200, "number of random systems to generate and check")
	seed := flag.Int64("seed", 1, "base seed")
	aborts := flag.Float64("aborts", 0.15, "scheduler abort probability")
	exclusive := flag.Bool("exclusive", false, "treat all accesses as writes (E2 baseline)")
	exhaustive := flag.Bool("exhaustive", false, "bounded model checking: enumerate ALL schedules of a tiny fixed system instead of sampling random ones")
	limit := flag.Int("limit", 100000, "schedule cap for -exhaustive")
	verbose := flag.Bool("v", false, "print every run")
	flag.Parse()

	mode := core.ReadWrite
	if *exclusive {
		mode = core.Exclusive
	}

	if *exhaustive {
		runExhaustive(mode, *limit)
		return
	}

	cfgs := []system.GenConfig{
		{Objects: 1, TopLevel: 2, MaxDepth: 1, MaxFanout: 2, ReadFraction: 0.5, SubProb: 0.5, SeqProb: 0.5},
		{Objects: 2, TopLevel: 3, MaxDepth: 2, MaxFanout: 3, ReadFraction: 0.3, SubProb: 0.4, SeqProb: 0.3},
		{Objects: 3, TopLevel: 3, MaxDepth: 2, MaxFanout: 3, ReadFraction: 0.7, SubProb: 0.5, SeqProb: 0.5},
		{Objects: 5, TopLevel: 4, MaxDepth: 3, MaxFanout: 3, ReadFraction: 0.5, SubProb: 0.5, SeqProb: 0.5},
		{Objects: 1, TopLevel: 3, MaxDepth: 2, MaxFanout: 2, ReadFraction: 0.0, SubProb: 0.5, SeqProb: 0.5},
		{Objects: 1, TopLevel: 3, MaxDepth: 2, MaxFanout: 2, ReadFraction: 1.0, SubProb: 0.5, SeqProb: 0.5},
	}

	var checked, events, txChecked, failures int
	start := time.Now()
	for i := 0; i < *runs; i++ {
		s := *seed + int64(i)
		cfg := cfgs[i%len(cfgs)]
		rng := rand.New(rand.NewSource(s))
		sys, err := system.Generate(rng, cfg)
		if err != nil {
			fatal(err)
		}
		sched, objs, err := sys.RunConcurrentInspect(system.DriverConfig{Seed: s, AbortProb: *aborts, Mode: mode})
		if err != nil {
			fatal(err)
		}
		st := sys.SystemType()
		if err := event.WFConcurrent(sched, st); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "run %d (seed %d): ill-formed schedule: %v\n", i, s, err)
			continue
		}
		for x, m := range objs {
			if err := m.CheckLockInvariants(); err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "run %d (seed %d): object %s: %v\n", i, s, x, err)
			}
		}
		n, err := checkAllCount(sched, st)
		txChecked += n
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "run %d (seed %d): %v\nschedule:\n%s\n", i, s, err, sched)
			continue
		}
		checked++
		events += len(sched)
		if *verbose {
			fmt.Printf("run %4d seed %6d: %4d events, %3d transactions verified\n", i, s, len(sched), n)
		}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "E1: serial correctness of R/W Locking schedules (%s mode)\n", mode)
	fmt.Fprintf(tw, "schedules verified\t%d/%d\n", checked, *runs)
	fmt.Fprintf(tw, "transactions checked\t%d\n", txChecked)
	fmt.Fprintf(tw, "total events\t%d\n", events)
	fmt.Fprintf(tw, "failures\t%d\n", failures)
	fmt.Fprintf(tw, "elapsed\t%s\n", time.Since(start).Round(time.Millisecond))
	tw.Flush()
	if failures > 0 {
		os.Exit(1)
	}
}

// checkAllCount is checker.CheckAll but also counts how many transactions
// were individually verified.
func checkAllCount(sched event.Schedule, st *event.SystemType) (int, error) {
	seen := map[tree.TID]struct{}{tree.Root: {}}
	ts := []tree.TID{tree.Root}
	for _, e := range sched {
		u, ok := event.TransactionOf(e)
		if !ok || st.IsAccess(u) {
			continue
		}
		if _, dup := seen[u]; !dup {
			seen[u] = struct{}{}
			ts = append(ts, u)
		}
	}
	n := 0
	for _, u := range ts {
		if sched.IsOrphan(u) {
			continue
		}
		if _, err := checker.Check(sched, st, u); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// runExhaustive enumerates every schedule of a minimal writer/reader
// system (including scheduler-abort branching) and checks Theorem 34 on
// each — bounded model checking rather than random sampling.
func runExhaustive(mode core.Mode, limit int) {
	sys, err := system.New(
		map[string]adt.State{"X": adt.NewRegister(int64(0))},
		[]system.ChildSpec{
			system.Sub(&system.Program{Children: []system.ChildSpec{
				system.Access("X", adt.RegWrite{V: int64(1)}),
			}}),
			system.Sub(&system.Program{Children: []system.ChildSpec{
				system.Access("X", adt.RegRead{}),
			}}),
		},
	)
	if err != nil {
		fatal(err)
	}
	st := sys.SystemType()
	start := time.Now()
	events := 0
	visited, complete, err := sys.Enumerate(system.EnumConfig{IncludeAborts: true, Limit: limit, Mode: mode}, func(s event.Schedule) bool {
		events += len(s)
		if err := event.WFConcurrent(s, st); err != nil {
			fatal(fmt.Errorf("ill-formed enumerated schedule: %w\n%s", err, s))
		}
		if err := checker.CheckAll(s, st); err != nil {
			fatal(fmt.Errorf("theorem violated: %w\n%s", err, s))
		}
		return true
	})
	if err != nil {
		fatal(err)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "E1 (bounded model checking, %s mode)\n", mode)
	fmt.Fprintf(tw, "schedules verified\t%d\n", visited)
	fmt.Fprintf(tw, "space exhausted\t%v\n", complete)
	fmt.Fprintf(tw, "total events\t%d\n", events)
	fmt.Fprintf(tw, "elapsed\t%s\n", time.Since(start).Round(time.Millisecond))
	tw.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "txverify:", err)
	os.Exit(1)
}
