// Command txserver serves a nestedtx transaction universe over TCP,
// speaking the internal/wire protocol (see package client for the Go
// client and the README's "Server" section for the frame format).
//
// Usage:
//
//	txserver [-addr :7654] [-objects spec] [-max-conns N]
//	         [-idle-timeout D] [-req-timeout D] [-exclusive] [-record]
//
// The -objects flag declares the shared universe as comma-separated
// name=kind pairs, where kind is one of counter, register, account, set,
// queue, table (e.g. "checking=account,savings=account,audit=queue").
//
// With -record the manager records the formal event schedule of the
// whole run; on drain (SIGINT/SIGTERM or -duration elapsing) the server
// machine-checks it with Manager.Verify — well-formedness, replay on the
// formal M(X) automata, and serial correctness per Theorem 34 — so the
// paper's guarantee stays checkable against real network executions.
// Recording grows memory with history size, so it is meant for bounded
// validation runs rather than long-lived production service.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nestedtx"
	"nestedtx/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":7654", "listen address")
		objects     = flag.String("objects", "counter=counter", "objects to register: comma-separated name=kind (counter, register, account, set, queue, table)")
		maxConns    = flag.Int("max-conns", 1024, "max concurrent sessions (0 = unlimited)")
		idleTimeout = flag.Duration("idle-timeout", 5*time.Minute, "abort sessions idle this long (0 = never)")
		reqTimeout  = flag.Duration("req-timeout", 10*time.Second, "per-request deadline; a blocked access past it aborts its transaction")
		exclusive   = flag.Bool("exclusive", false, "exclusive-locking mode: treat every access as a write (the paper's [LM] baseline)")
		record      = flag.Bool("record", false, "record the formal schedule and Verify it on drain (Theorem 34 check)")
		duration    = flag.Duration("duration", 0, "serve this long, then drain (0 = until SIGINT/SIGTERM)")
	)
	flag.Parse()

	var opts []nestedtx.Option
	if *record {
		opts = append(opts, nestedtx.WithRecording())
	}
	if *exclusive {
		opts = append(opts, nestedtx.WithExclusiveLocking())
	}
	mgr := nestedtx.NewManager(opts...)
	if err := registerObjects(mgr, *objects); err != nil {
		log.Fatalf("txserver: %v", err)
	}

	srv := server.New(mgr, server.Config{
		MaxConns:       *maxConns,
		IdleTimeout:    *idleTimeout,
		RequestTimeout: *reqTimeout,
	})

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()
	log.Printf("txserver: serving on %s (record=%v exclusive=%v max-conns=%d)",
		*addr, *record, *exclusive, *maxConns)

	if *duration > 0 {
		select {
		case <-stop:
		case <-time.After(*duration):
		case err := <-done:
			log.Fatalf("txserver: serve: %v", err)
		}
	} else {
		select {
		case <-stop:
		case err := <-done:
			log.Fatalf("txserver: serve: %v", err)
		}
	}

	log.Printf("txserver: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("txserver: drain: %v", err)
	}
	c := srv.Counters()
	lk := mgr.Stats()
	log.Printf("txserver: drained: sessions=%d requests=%d commits=%d aborts=%d deadlock-victims=%d reaped=%d rejected=%d lock-waits=%d",
		c.TotalSessions, c.Requests, c.Commits, c.Aborts, c.DeadlockVictims,
		c.ReapedSessions, c.RejectedConns, lk.Waits)

	if *record {
		log.Printf("txserver: verifying recorded schedule (%d events)...", len(mgr.Schedule()))
		if err := mgr.Verify(); err != nil {
			log.Fatalf("txserver: VERIFY FAILED: %v", err)
		}
		log.Printf("txserver: schedule verified: well-formed, replays on M(X), serially correct (Theorem 34)")
	}
}

// registerObjects parses "name=kind,..." and registers each object.
func registerObjects(m *nestedtx.Manager, spec string) error {
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	for _, pair := range strings.Split(spec, ",") {
		name, kind, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return fmt.Errorf("bad object spec %q (want name=kind)", pair)
		}
		var st nestedtx.State
		switch kind {
		case "counter":
			st = nestedtx.Counter{}
		case "register":
			st = nestedtx.NewRegister(nil)
		case "account":
			st = nestedtx.Account{}
		case "set":
			st = nestedtx.NewIntSet()
		case "queue":
			st = nestedtx.NewQueue()
		case "table":
			st = nestedtx.NewTable(nil)
		default:
			return fmt.Errorf("unknown object kind %q for %q", kind, name)
		}
		if err := m.Register(name, st); err != nil {
			return err
		}
	}
	return nil
}
