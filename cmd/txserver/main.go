// Command txserver serves a nestedtx transaction universe over TCP,
// speaking the internal/wire protocol (see package client for the Go
// client and the README's "Server" section for the frame format).
//
// Usage:
//
//	txserver [-addr :7654] [-objects spec] [-max-conns N]
//	         [-idle-timeout D] [-req-timeout D] [-exclusive] [-record]
//	         [-trace N] [-metrics-every D] [-pprof addr] [-chaos]
//	         [-data-dir dir] [-sync-window D] [-follow leader:port]
//
// With -data-dir the server is durable: every top-level commit is
// write-ahead logged and fsynced (group-committed within -sync-window)
// before its reply goes out, the directory's previous contents are
// recovered on boot (torn tail truncated, recovery summary logged), and
// a graceful drain checkpoints the log. Objects recovered from the log
// keep their state; -objects only adds ones the log does not know.
// Combined with -chaos, the drain is followed by a crash-recovery
// self-test: the log is reopened as a cold process would, the recovered
// history is machine-checked (Theorem 34 across the restart), and the
// recovered states are compared against the live ones.
//
// With -follow the server is a read replica instead: -data-dir (still
// required) is kept in sync by streaming the leader's WAL over the wire
// protocol (REPL_HELLO catch-up negotiation, checksummed REPL_BATCH
// frames, snapshot bootstrap when the leader has checkpointed past this
// replica). The replica serves committed-to-root reads (STATE), reports
// its lag (REPL_STATUS, METRICS), and refuses every transaction verb
// with the read_only wire error. Sending the process SIGUSR1 — or the
// PROMOTE wire verb — promotes it: replication stops, the inherited
// directory is recovered and the whole history re-verified with the
// full machine check (Theorem 34 across the failover), and only then
// does the server start accepting writes as a new leader, itself
// shippable to further replicas. A durable leader needs no flag to
// serve replicas: any durable txserver accepts REPL_HELLO.
//
// A durable -chaos run additionally performs a replication self-test
// before draining: it boots an in-process replica (in-memory WAL)
// against the live server through a faultnet proxy, partitions and
// heals the replication link mid-stream, waits for catch-up, then
// promotes the replica — recovery plus full verification — and checks
// the promoted states match the leader's exactly.
//
// Observability: metrics (latency histograms, outcome counters,
// contention gauges) are always on and served to clients via the
// METRICS wire verb. -trace N additionally keeps a ring of the last N
// lifecycle/lock events, dumpable remotely (METRICS with dump) or by
// sending the process SIGQUIT, which logs the ring without stopping the
// server. -metrics-every D logs a one-line metrics summary every D;
// -pprof addr serves net/http/pprof on a side listener.
//
// The -objects flag declares the shared universe as comma-separated
// name=kind pairs, where kind is one of counter, register, account, set,
// queue, table (e.g. "checking=account,savings=account,audit=queue").
//
// With -record the manager records the formal event schedule of the
// whole run; on drain (SIGINT/SIGTERM or -duration elapsing) the server
// machine-checks it with Manager.Verify — well-formedness, replay on the
// formal M(X) automata, and serial correctness per Theorem 34 — so the
// paper's guarantee stays checkable against real network executions.
// Recording grows memory with history size, so it is meant for bounded
// validation runs rather than long-lived production service.
//
// With -chaos the server does not wait for clients: it fronts itself
// with an internal/faultnet fault-injection proxy, drives a pooled
// workload through connection cuts and a partition/heal cycle, checks
// committed state against its own commit counter, then drains —
// `txserver -record -chaos` is a self-contained "Theorem 34 under
// network faults" check.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"nestedtx"
	"nestedtx/client"
	"nestedtx/internal/faultnet"
	"nestedtx/internal/obs"
	"nestedtx/internal/repl"
	"nestedtx/internal/server"
	"nestedtx/internal/wal"
	"nestedtx/internal/wire"
)

func main() {
	var (
		addr        = flag.String("addr", ":7654", "listen address")
		objects     = flag.String("objects", "counter=counter", "objects to register: comma-separated name=kind (counter, register, account, set, queue, table)")
		maxConns    = flag.Int("max-conns", 1024, "max concurrent sessions (0 = unlimited)")
		idleTimeout = flag.Duration("idle-timeout", 5*time.Minute, "abort sessions idle this long (0 = never)")
		reqTimeout  = flag.Duration("req-timeout", 10*time.Second, "per-request deadline; a blocked access past it aborts its transaction")
		exclusive   = flag.Bool("exclusive", false, "exclusive-locking mode: treat every access as a write (the paper's [LM] baseline)")
		record      = flag.Bool("record", false, "record the formal schedule and Verify it on drain (Theorem 34 check)")
		duration    = flag.Duration("duration", 0, "serve this long, then drain (0 = until SIGINT/SIGTERM)")
		chaos       = flag.Bool("chaos", false, "fault-injection self-test: drive a pooled workload through a faultnet proxy with connection cuts and a partition, then drain (and with -record, verify) and exit")
		traceCap    = flag.Int("trace", 0, "keep a ring of the last N lifecycle/lock trace events, dumpable via METRICS dump or SIGQUIT (0 = off)")
		metricsLog  = flag.Duration("metrics-every", 0, "log a one-line metrics summary this often (0 = never)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
		dataDir     = flag.String("data-dir", "", "write-ahead log directory: commits are durable and the directory is recovered on boot (empty = in-memory only)")
		syncWindow  = flag.Duration("sync-window", 0, "group-commit window: concurrent commits within it share one fsync (needs -data-dir)")
		follow      = flag.String("follow", "", "run as a read replica of this leader address (needs -data-dir); SIGUSR1 or the PROMOTE verb promotes")
	)
	flag.Parse()

	var opts []nestedtx.Option
	if *record {
		opts = append(opts, nestedtx.WithRecording())
	}
	if *exclusive {
		opts = append(opts, nestedtx.WithExclusiveLocking())
	}
	if *traceCap > 0 {
		opts = append(opts, nestedtx.WithTracing(*traceCap))
	}
	if *follow != "" {
		if *dataDir == "" {
			log.Fatalf("txserver: -follow needs -data-dir (the replica keeps its own WAL)")
		}
		if *chaos {
			log.Fatalf("txserver: -chaos drives writes and cannot run on a read replica")
		}
		runFollower(followerConfig{
			leader: *follow, dataDir: *dataDir, syncWindow: *syncWindow,
			promoteOpts: opts, addr: *addr, maxConns: *maxConns,
			idleTimeout: *idleTimeout, reqTimeout: *reqTimeout,
			metricsEvery: *metricsLog, pprofAddr: *pprofAddr, duration: *duration,
		})
		return
	}
	var mgr *nestedtx.Manager
	if *dataDir != "" {
		m, rec, err := nestedtx.OpenDurable(*dataDir, nestedtx.DurableOptions{SyncWindow: *syncWindow}, opts...)
		if err != nil {
			log.Fatalf("txserver: open %s: %v", *dataDir, err)
		}
		mgr = m
		log.Printf("txserver: recovered %s: %d objects, %d records past checkpoint (lsn %d), next lsn %d, torn bytes cut %d, dropped %v",
			*dataDir, len(rec.States()), len(rec.Records), rec.CheckpointLSN, rec.NextLSN, rec.TornBytes, rec.Dropped)
		if err := rec.Verify(); err != nil {
			log.Fatalf("txserver: recovered history failed verification: %v", err)
		}
	} else {
		if *syncWindow != 0 {
			log.Fatalf("txserver: -sync-window needs -data-dir")
		}
		mgr = nestedtx.NewManager(opts...)
	}
	if err := registerObjects(mgr, *objects); err != nil {
		log.Fatalf("txserver: %v", err)
	}
	if *chaos {
		// The self-test workload runs on its own objects, so it composes
		// with whatever -objects declared (or a recovered data dir).
		for i := 0; i < chaosWorkers; i++ {
			if err := ensure(mgr, fmt.Sprintf("chaos%d", i), nestedtx.Counter{}); err != nil {
				log.Fatalf("txserver: %v", err)
			}
		}
		if err := ensure(mgr, "chaos_hot", nestedtx.Counter{}); err != nil {
			log.Fatalf("txserver: %v", err)
		}
	}

	srv := server.New(mgr, server.Config{
		MaxConns:       *maxConns,
		IdleTimeout:    *idleTimeout,
		RequestTimeout: *reqTimeout,
	})

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()
	log.Printf("txserver: serving on %s (record=%v exclusive=%v max-conns=%d trace=%d)",
		*addr, *record, *exclusive, *maxConns, *traceCap)

	if *pprofAddr != "" {
		go func() {
			log.Printf("txserver: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("txserver: pprof: %v", err)
			}
		}()
	}
	if *metricsLog > 0 {
		go func() {
			tick := time.NewTicker(*metricsLog)
			defer tick.Stop()
			for range tick.C {
				logMetrics(mgr.Metrics())
			}
		}()
	}
	// SIGQUIT dumps the trace ring (and a metrics line) without stopping
	// the server — the classic "what is it doing right now" probe.
	quitSig := make(chan os.Signal, 1)
	signal.Notify(quitSig, syscall.SIGQUIT)
	go func() {
		for range quitSig {
			logMetrics(mgr.Metrics())
			dumpTrace(mgr.Metrics())
		}
	}()

	if *chaos {
		if err := runChaos(mgr, srv); err != nil {
			log.Fatalf("txserver: chaos self-test: %v", err)
		}
		if *dataDir != "" {
			if err := runReplChaos(mgr, srv); err != nil {
				log.Fatalf("txserver: replication self-test: %v", err)
			}
		}
	} else if *duration > 0 {
		select {
		case <-stop:
		case <-time.After(*duration):
		case err := <-done:
			log.Fatalf("txserver: serve: %v", err)
		}
	} else {
		select {
		case <-stop:
		case err := <-done:
			log.Fatalf("txserver: serve: %v", err)
		}
	}

	log.Printf("txserver: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("txserver: drain: %v", err)
	}
	c := srv.Counters()
	lk := mgr.Stats()
	log.Printf("txserver: drained: sessions=%d requests=%d commits=%d aborts=%d deadlock-victims=%d reaped=%d rejected=%d lock-waits=%d",
		c.TotalSessions, c.Requests, c.Commits, c.Aborts, c.DeadlockVictims,
		c.ReapedSessions, c.RejectedConns, lk.Waits)

	if *record {
		log.Printf("txserver: verifying recorded schedule (%d events)...", len(mgr.Schedule()))
		if err := mgr.Verify(); err != nil {
			log.Fatalf("txserver: VERIFY FAILED: %v", err)
		}
		log.Printf("txserver: schedule verified: well-formed, replays on M(X), serially correct (Theorem 34)")
	}

	if *dataDir != "" {
		if ws, ok := mgr.WalStats(); ok {
			log.Printf("txserver: wal: next lsn %d, checkpoint lsn %d, active segment %s (%d bytes)",
				ws.NextLSN, ws.CheckpointLSN, ws.Segment, ws.SegmentBytes)
		}
		if err := mgr.CloseWAL(); err != nil {
			log.Fatalf("txserver: close wal: %v", err)
		}
		if *chaos {
			if err := crashRecoverSelfTest(mgr, *dataDir); err != nil {
				log.Fatalf("txserver: crash-recovery self-test: %v", err)
			}
		}
	}
}

// crashRecoverSelfTest reopens the data directory exactly as a cold
// process would, machine-checks the recovered history (Theorem 34 across
// the restart), compares the recovered states against the live manager's,
// and leaves the directory checkpointed for the next boot.
func crashRecoverSelfTest(live *nestedtx.Manager, dir string) error {
	m2, rec, err := nestedtx.OpenDurable(dir, nestedtx.DurableOptions{})
	if err != nil {
		return err
	}
	defer m2.CloseWAL()
	if err := rec.Verify(); err != nil {
		return fmt.Errorf("recovered history rejected: %w", err)
	}
	states := rec.States()
	for name, st := range states {
		want, err := live.State(name)
		if err != nil {
			return fmt.Errorf("recovered object %q unknown to the live manager: %w", name, err)
		}
		// Compare via the codec: states may hold maps, so == won't do.
		a, err := wire.EncodeState(st)
		if err != nil {
			return err
		}
		b, err := wire.EncodeState(want)
		if err != nil {
			return err
		}
		if string(a) != string(b) {
			return fmt.Errorf("recovered %q = %s, live manager has %s", name, a, b)
		}
	}
	if err := m2.Checkpoint(); err != nil {
		return fmt.Errorf("post-recovery checkpoint: %w", err)
	}
	log.Printf("txserver: crash-recovery self-test ok: %d objects recovered, %d records replayed, history verified (Theorem 34 across restart)",
		len(states), len(rec.Records))
	return nil
}

// ensure registers name with initial state unless the manager already
// knows it (e.g. it was recovered from the data dir).
func ensure(m *nestedtx.Manager, name string, st nestedtx.State) error {
	if _, err := m.State(name); err == nil {
		return nil
	}
	return m.Register(name, st)
}

// logMetrics prints a one-line latency/outcome summary of the live
// metric set.
func logMetrics(met *obs.Metrics) {
	s := met.Snapshot()
	log.Printf("txserver: metrics: tx p50=%v p99=%v max=%v commits=%d aborts=%d | op p50=%v p99=%v | lock-wait n=%d p99=%v victims=%d(deadlock=%d cancelled=%d) | queued=%d contended=%d",
		s.TxLatency.Quantile(50), s.TxLatency.Quantile(99), s.TxLatency.Max,
		s.TxCommits, s.TxAborts,
		s.OpLatency.Quantile(50), s.OpLatency.Quantile(99),
		s.LockWait.Count, s.LockWait.Quantile(99),
		s.Victims(), s.VictimsDeadlock, s.VictimsCancelled,
		s.QueuedWaiters, s.ContendedObjects)
}

// dumpTrace logs the retained trace ring oldest-first (no-op without
// -trace).
func dumpTrace(met *obs.Metrics) {
	tr := met.Tracer
	entries := tr.Dump()
	if len(entries) == 0 {
		log.Printf("txserver: trace: empty (run with -trace N to enable)")
		return
	}
	log.Printf("txserver: trace: %d retained of %d total", len(entries), tr.Seq())
	for _, e := range entries {
		line := fmt.Sprintf("  #%d %s %s %s", e.Seq, e.At.Format("15:04:05.000000"), e.Kind, e.T)
		if e.Object != "" {
			line += " obj=" + e.Object
		}
		if e.Dur != 0 {
			line += " dur=" + e.Dur.String()
		}
		log.Print(line)
	}
}

const (
	chaosWorkers   = 4
	chaosPerWorker = 25
)

// runChaos is the -chaos self-test: it fronts the live server with a
// faultnet proxy, drives a pooled workload through it while repeatedly
// cutting every live connection and imposing one partition/heal cycle,
// and checks the workload completes and the committed state matches the
// server's commit counter exactly. The caller then drains (and with
// -record, verifies) as usual — so `txserver -record -chaos` is a
// one-command "Theorem 34 under network faults" check.
func runChaos(mgr *nestedtx.Manager, srv *server.Server) error {
	var addr net.Addr
	for i := 0; i < 100 && addr == nil; i++ {
		if addr = srv.Addr(); addr == nil {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if addr == nil {
		return fmt.Errorf("server never started listening")
	}
	px, err := faultnet.New(addr.String(), faultnet.Faults{
		Latency: 200 * time.Microsecond,
		Jitter:  time.Millisecond,
	}, 1)
	if err != nil {
		return err
	}
	defer px.Close()
	pool, err := client.NewPool(px.Addr(), chaosWorkers, client.WithTimeout(5*time.Second))
	if err != nil {
		return err
	}
	defer pool.Close()
	log.Printf("txserver: chaos self-test: %d workers × %d transactions through %s (cuts + partition)",
		chaosWorkers, chaosPerWorker, px.Addr())

	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for i := 0; i < 16; i++ {
			time.Sleep(30 * time.Millisecond)
			if i == 8 {
				px.Partition()
				time.Sleep(150 * time.Millisecond)
				px.Heal()
				continue
			}
			px.CutAll()
		}
	}()

	var wg sync.WaitGroup
	errc := make(chan error, chaosWorkers)
	for w := 0; w < chaosWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			obj := fmt.Sprintf("chaos%d", w)
			for j := 0; j < chaosPerWorker; j++ {
				err := pool.RunRetry(200, func(tx *client.Tx) error {
					if err := tx.Sub(func(sub *client.Tx) error {
						_, err := sub.Write("chaos_hot", nestedtx.CtrAdd{Delta: 1})
						return err
					}); err != nil {
						return err
					}
					_, err := tx.Write(obj, nestedtx.CtrAdd{Delta: 1})
					return err
				})
				if err != nil {
					errc <- fmt.Errorf("worker %d item %d: %w", w, j, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	<-chaosDone
	close(errc)
	for err := range errc {
		return err
	}

	// Exact accounting despite lost responses: every commit is one +1 to
	// chaos_hot, so state must equal the server's commit counter.
	st, err := mgr.State("chaos_hot")
	if err != nil {
		return err
	}
	hot := st.(nestedtx.Counter).N
	commits := int64(srv.Counters().Commits)
	if hot != commits {
		return fmt.Errorf("chaos_hot = %d but server committed %d: counters drifted", hot, commits)
	}
	accepted, cut := px.Stats()
	ps := pool.Stats()
	log.Printf("txserver: chaos self-test ok: %d commits (state matches), proxy accepted=%d cut=%d, pool redials=%d discarded=%d",
		commits, accepted, cut, ps.Redials, ps.Discarded)
	return nil
}

type followerConfig struct {
	leader, dataDir, addr, pprofAddr    string
	syncWindow, idleTimeout, reqTimeout time.Duration
	metricsEvery, duration              time.Duration
	maxConns                            int
	promoteOpts                         []nestedtx.Option
}

// runFollower is the -follow mode: the data dir is kept in sync with the
// leader's WAL over the wire, the server serves committed reads and
// refuses transaction verbs, and SIGUSR1 (or the PROMOTE verb from any
// client) promotes — recovery, full re-verification, then writes.
func runFollower(cfg followerConfig) {
	f, err := repl.OpenFollower(cfg.dataDir, wal.Options{SyncWindow: cfg.syncWindow})
	if err != nil {
		log.Fatalf("txserver: open replica %s: %v", cfg.dataDir, err)
	}
	log.Printf("txserver: replica of %s: recovered %s to lsn %d",
		cfg.leader, cfg.dataDir, f.Status().NextLSN)
	srv := server.New(nil, server.Config{
		MaxConns:       cfg.maxConns,
		IdleTimeout:    cfg.idleTimeout,
		RequestTimeout: cfg.reqTimeout,
		Follower:       f,
		PromoteOptions: cfg.promoteOpts,
	})
	go func() {
		if err := f.Run(cfg.leader); err != nil {
			log.Printf("txserver: replication stopped: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(cfg.addr) }()
	log.Printf("txserver: serving read-only replica on %s; SIGUSR1 (or PROMOTE) promotes", cfg.addr)

	if cfg.pprofAddr != "" {
		go func() {
			log.Printf("txserver: pprof on http://%s/debug/pprof/", cfg.pprofAddr)
			if err := http.ListenAndServe(cfg.pprofAddr, nil); err != nil {
				log.Printf("txserver: pprof: %v", err)
			}
		}()
	}
	// liveMetrics follows the role: the follower's metric set until
	// promotion, the promoted manager's after.
	liveMetrics := func() *obs.Metrics {
		if fo := srv.Follower(); fo != nil {
			return fo.Metrics()
		}
		if m := srv.Manager(); m != nil {
			return m.Metrics()
		}
		return &obs.Metrics{}
	}
	logReplica := func() {
		logMetrics(liveMetrics())
		if fo := srv.Follower(); fo != nil {
			st := fo.Status()
			log.Printf("txserver: replica: leader=%s connected=%v lsn=%d lag=%d records %.3fs",
				st.Leader, st.Connected, st.NextLSN, st.LagRecords, st.LagSeconds)
		}
	}
	if cfg.metricsEvery > 0 {
		go func() {
			tick := time.NewTicker(cfg.metricsEvery)
			defer tick.Stop()
			for range tick.C {
				logReplica()
			}
		}()
	}
	quitSig := make(chan os.Signal, 1)
	signal.Notify(quitSig, syscall.SIGQUIT)
	go func() {
		for range quitSig {
			logReplica()
			dumpTrace(liveMetrics())
		}
	}()
	usr := make(chan os.Signal, 1)
	signal.Notify(usr, syscall.SIGUSR1)
	go func() {
		for range usr {
			rec, err := srv.Promote()
			if err != nil {
				log.Printf("txserver: promote: %v", err)
				continue
			}
			log.Printf("txserver: PROMOTED: %d objects, %d records re-verified (Theorem 34 across failover); accepting writes, shipping to replicas",
				len(rec.States()), len(rec.Records))
		}
	}()

	if cfg.duration > 0 {
		select {
		case <-stop:
		case <-time.After(cfg.duration):
		case err := <-done:
			log.Fatalf("txserver: serve: %v", err)
		}
	} else {
		select {
		case <-stop:
		case err := <-done:
			log.Fatalf("txserver: serve: %v", err)
		}
	}
	log.Printf("txserver: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("txserver: drain: %v", err)
	}
	if m := srv.Manager(); m != nil { // promoted during this run
		if ws, ok := m.WalStats(); ok {
			log.Printf("txserver: wal: next lsn %d, checkpoint lsn %d", ws.NextLSN, ws.CheckpointLSN)
		}
		if err := m.CloseWAL(); err != nil {
			log.Fatalf("txserver: close wal: %v", err)
		}
	} else {
		log.Printf("txserver: replica drained at lsn %d", f.Status().NextLSN)
	}
}

// runReplChaos is the replication leg of -chaos on a durable server: an
// in-process replica (in-memory WAL) follows the live server through a
// faultnet proxy, survives a partition/heal of the replication link
// mid-stream, drains to the leader's exact durable position, and is then
// promoted over the wire — recovery plus the full machine check — with
// the promoted states compared against the leader's. The leader is
// checkpointed first, so the replica bootstraps over the snapshot path
// and promotion re-verifies a bounded post-checkpoint suffix.
func runReplChaos(mgr *nestedtx.Manager, srv *server.Server) error {
	if err := mgr.Checkpoint(); err != nil {
		return err
	}
	addr := srv.Addr()
	if addr == nil {
		return fmt.Errorf("server not listening")
	}
	px, err := faultnet.New(addr.String(), faultnet.Faults{}, 2)
	if err != nil {
		return err
	}
	defer px.Close()
	f, err := repl.OpenFollower("replica", wal.Options{FS: wal.NewMemFS()})
	if err != nil {
		return err
	}
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	fsrv := server.New(nil, server.Config{Follower: f})
	go fsrv.Serve(fln)
	go f.Run(px.Addr())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		fsrv.Shutdown(ctx)
	}()
	log.Printf("txserver: replication self-test: replica %s following through %s", fln.Addr(), px.Addr())

	pool, err := client.NewPool(addr.String(), 4, client.WithTimeout(5*time.Second))
	if err != nil {
		return err
	}
	defer pool.Close()
	var wrote int64
	for i := 0; i < 60; i++ {
		switch i {
		case 20:
			px.Partition() // cut the stream mid-flight; writes continue
		case 40:
			px.Heal()
		}
		if err := pool.RunRetry(20, func(tx *client.Tx) error {
			_, err := tx.Write("chaos_hot", nestedtx.CtrAdd{Delta: 1})
			return err
		}); err != nil {
			return fmt.Errorf("write %d: %w", i, err)
		}
		wrote++
		time.Sleep(2 * time.Millisecond)
	}

	// The writes above are done (fence); drain the replica to the
	// leader's exact durable position so promotion loses nothing.
	deadline := time.Now().Add(30 * time.Second)
	for {
		ws, _ := mgr.WalStats()
		if f.Status().NextLSN == ws.DurableLSN {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica never caught up: at lsn %d, leader durable %d",
				f.Status().NextLSN, ws.DurableLSN)
		}
		time.Sleep(5 * time.Millisecond)
	}

	fc, err := client.Dial(fln.Addr().String(), client.WithTimeout(time.Minute))
	if err != nil {
		return err
	}
	defer fc.Close()
	if err := fc.Promote(); err != nil {
		return fmt.Errorf("promote: %w", err)
	}

	// The promoted universe must match the leader's exactly.
	names := []string{"chaos_hot"}
	for i := 0; i < chaosWorkers; i++ {
		names = append(names, fmt.Sprintf("chaos%d", i))
	}
	for _, name := range names {
		want, err := mgr.State(name)
		if err != nil {
			return err
		}
		got, err := fc.State(name)
		if err != nil {
			return fmt.Errorf("promoted replica missing %q: %w", name, err)
		}
		a, err := wire.EncodeState(got)
		if err != nil {
			return err
		}
		b, err := wire.EncodeState(want)
		if err != nil {
			return err
		}
		if string(a) != string(b) {
			return fmt.Errorf("promoted %q = %s, leader has %s", name, a, b)
		}
	}
	// And it takes writes.
	if err := fc.Run(func(tx *client.Tx) error {
		_, err := tx.Write("chaos_hot", nestedtx.CtrAdd{Delta: 1})
		return err
	}); err != nil {
		return fmt.Errorf("write on promoted replica: %w", err)
	}
	accepted, cut := px.Stats()
	log.Printf("txserver: replication self-test ok: %d writes replicated through a partition/heal (proxy accepted=%d cut=%d), promoted replica verified and writable",
		wrote, accepted, cut)
	return nil
}

// registerObjects parses "name=kind,..." and registers each object.
func registerObjects(m *nestedtx.Manager, spec string) error {
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	for _, pair := range strings.Split(spec, ",") {
		name, kind, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return fmt.Errorf("bad object spec %q (want name=kind)", pair)
		}
		var st nestedtx.State
		switch kind {
		case "counter":
			st = nestedtx.Counter{}
		case "register":
			st = nestedtx.NewRegister(nil)
		case "account":
			st = nestedtx.Account{}
		case "set":
			st = nestedtx.NewIntSet()
		case "queue":
			st = nestedtx.NewQueue()
		case "table":
			st = nestedtx.NewTable(nil)
		default:
			return fmt.Errorf("unknown object kind %q for %q", kind, name)
		}
		if err := ensure(m, name, st); err != nil {
			return err
		}
	}
	return nil
}
