package nestedtx

import (
	"testing"
	"time"
)

// TestBackoffDurBounds pins the backoff schedule: positive, jittered
// below the per-attempt ceiling, and saturating — never panicking — for
// out-of-range attempt counts. Before the clamp moved from the shift
// count to the delay, backoffDur(-1) panicked with a negative shift.
func TestBackoffDurBounds(t *testing.T) {
	const base = 50 * time.Microsecond
	cases := []struct {
		attempt int
		ceil    time.Duration
	}{
		{-1, base},
		{0, base},
		{1, 2 * base},
		{2, 4 * base},
		{5, 32 * base},
		{6, 64 * base},
		{7, 64 * base},
		{31, 64 * base},
		{32, 64 * base},
		{63, 64 * base},
		{64, 64 * base},
		{1 << 20, 64 * base},
	}
	for _, c := range cases {
		for i := 0; i < 50; i++ {
			d := backoffDur(c.attempt)
			if d <= 0 {
				t.Fatalf("backoffDur(%d) = %v, want positive", c.attempt, d)
			}
			if d > c.ceil {
				t.Fatalf("backoffDur(%d) = %v, want <= %v", c.attempt, d, c.ceil)
			}
		}
	}
}
