package nestedtx

import "nestedtx/internal/adt"

// Value is an access's return value; values must be comparable with ==.
type Value = adt.Value

// State is an immutable snapshot of an object's data; see the provided
// concrete types ([Register], [Counter], [Account], [IntSet], [Table]) or
// implement your own.
type State = adt.State

// Op is one operation of a data type. ReadOnly ops take read locks (and
// must return the state unchanged); all others take write locks.
type Op = adt.Op

// Register is a single mutable cell.
type Register = adt.Register

// NewRegister returns a register state holding v.
func NewRegister(v Value) Register { return adt.NewRegister(v) }

// RegRead reads a register (read lock).
type RegRead = adt.RegRead

// RegWrite overwrites a register (write lock).
type RegWrite = adt.RegWrite

// Counter is an integer counter.
type Counter = adt.Counter

// CtrGet reads a counter (read lock).
type CtrGet = adt.CtrGet

// CtrAdd adds a delta to a counter (write lock).
type CtrAdd = adt.CtrAdd

// Account is a bank-account balance in integer units.
type Account = adt.Account

// AcctResult is the result of an account mutation.
type AcctResult = adt.AcctResult

// AcctBalance reads the balance (read lock).
type AcctBalance = adt.AcctBalance

// AcctDeposit adds to the balance (write lock).
type AcctDeposit = adt.AcctDeposit

// AcctWithdraw subtracts from the balance if funds suffice (write lock);
// the returned AcctResult reports whether it succeeded.
type AcctWithdraw = adt.AcctWithdraw

// IntSet is a set of int64 members.
type IntSet = adt.IntSet

// NewIntSet returns a set state with the given members.
func NewIntSet(members ...int64) IntSet { return adt.NewIntSet(members...) }

// SetInsert inserts a member (write lock).
type SetInsert = adt.SetInsert

// SetRemove removes a member (write lock).
type SetRemove = adt.SetRemove

// SetContains tests membership (read lock).
type SetContains = adt.SetContains

// SetSize returns the cardinality (read lock).
type SetSize = adt.SetSize

// Table is a string-keyed map.
type Table = adt.Table

// NewTable returns a table state with the given contents.
func NewTable(init map[string]Value) Table { return adt.NewTable(init) }

// TblGet reads a key (read lock).
type TblGet = adt.TblGet

// TblPut stores a key (write lock).
type TblPut = adt.TblPut

// TblDelete removes a key (write lock).
type TblDelete = adt.TblDelete

// TakeResult is the result of a CtrTake.
type TakeResult = adt.TakeResult

// CtrTake atomically takes units from a counter if enough remain (write
// lock); prefer it over a read-then-write pair, which can deadlock on
// lock upgrade.
type CtrTake = adt.CtrTake

// Queue is a FIFO of values.
type Queue = adt.Queue

// NewQueue returns a queue state with the given initial contents.
func NewQueue(items ...Value) Queue { return adt.NewQueue(items...) }

// QEnqueue appends a value (write lock).
type QEnqueue = adt.QEnqueue

// QDequeue removes and returns the front value (write lock).
type QDequeue = adt.QDequeue

// QPeek returns the front value without removing it (read lock).
type QPeek = adt.QPeek

// QLen returns the queue length (read lock).
type QLen = adt.QLen
